//! Experiment implementations behind the `experiments` binary.
//!
//! Each paper artifact is a function `fn(&mut Recorder) -> Vec<Table>`;
//! [`registry()`] wraps all of them as [`icoe::Experiment`]s so the
//! binary (and any test) can drive them uniformly: every run happens
//! under a root span `exp:<id>`, phases appear as child spans, and the
//! recorder's counters/gauges ride along into the structured JSON
//! document and `BENCH_<id>.json` summaries. See DESIGN.md §3 for the
//! experiment index and EXPERIMENTS.md for paper-vs-measured records.

pub mod exps_apps;
pub mod exps_cluster;
pub mod exps_compute;
pub mod exps_core;
pub mod exps_des;
pub mod exps_matrix;
pub mod exps_mem;
pub mod exps_net;
pub mod exps_opt;
pub mod exps_pipeline;
pub mod exps_tune;

use hetsim::obs::Recorder;
use icoe::{FnExperiment, MachineSensitiveExperiment, Registry, Report};

pub use icoe::report::{fmt_time, Table};

/// Every experiment id, in paper order (mirrors [`registry()`]).
pub const ALL: &[&str] = &[
    "table1",
    "fig2",
    "table2",
    "fig3",
    "table3",
    "fig6",
    "fig8",
    "table4",
    "table5",
    "cretin",
    "md",
    "sw4",
    "vbl",
    "cardioid",
    "opt",
    "kavg",
    "pipeline-overlap",
    "um-oversubscription",
    "collective-overlap",
    "cluster-spike",
    "cluster-policies",
    "auto-tune",
    "lessons",
    "machines",
    "rank-throughput",
    "portability-matrix",
    "cluster-throughput",
];

/// Build the full experiment registry, in paper order.
pub fn registry() -> Registry {
    // Legacy experiments take no parameters: the `_params` wrapper keeps
    // them byte-identical under any `--param` (the golden contract).
    macro_rules! reg {
        ($r:ident, $( ($id:literal, $artifact:literal, $path:path) ),+ $(,)?) => {
            $( $r.register(FnExperiment {
                id: $id,
                paper_artifact: $artifact,
                f: |rec, _params| Report::new($path(rec)),
            }); )+
        };
    }
    // Parameterised experiments (the cluster pair) thread params through.
    macro_rules! reg_p {
        ($r:ident, $( ($id:literal, $artifact:literal, $path:path) ),+ $(,)?) => {
            $( $r.register(FnExperiment {
                id: $id,
                paper_artifact: $artifact,
                f: |rec, params| Report::new($path(rec, params)),
            }); )+
        };
    }
    // Machine-sensitive experiments additionally re-run per column of the
    // portability matrix (`icoe::matrix`); everything else reuses its
    // sierra baseline cell byte-for-byte.
    macro_rules! reg_m {
        ($r:ident, $( ($id:literal, $artifact:literal, $path:path) ),+ $(,)?) => {
            $( $r.register(MachineSensitiveExperiment(FnExperiment {
                id: $id,
                paper_artifact: $artifact,
                f: |rec, params| Report::new($path(rec, params)),
            })); )+
        };
    }
    let mut r = Registry::new();
    reg!(
        r,
        (
            "table1",
            "Table 1 (completed activities)",
            exps_core::table1
        ),
        ("fig2", "Fig. 2 (SparkPlug LDA stacks)", exps_core::fig2),
        ("table2", "Table 2 (graph scale / GTEPS)", exps_core::table2),
        ("fig3", "Fig. 3 (LBANN scaling)", exps_core::fig3),
        ("table3", "Table 3 (video accuracies)", exps_core::table3),
        ("fig6", "Fig. 6 (ParaDyn SLNSP)", exps_compute::fig6),
        (
            "fig8",
            "Fig. 8 (nonlinear diffusion breakdown)",
            exps_compute::fig8
        ),
        (
            "table4",
            "Table 4 (GPU speedup by size/order)",
            exps_compute::table4
        ),
        (
            "table5",
            "Table 5 (CleverLeaf / SAMRAI)",
            exps_compute::table5
        ),
        (
            "cretin",
            "§4.3 (Cretin throughput + solvers)",
            exps_apps::cretin
        ),
        (
            "md",
            "§4.6 (ddcMD vs GROMACS-like)",
            exps_apps::md_experiment
        ),
        ("sw4", "§4.9 (SW4 kernel paths + scaling)", exps_apps::sw4),
        ("vbl", "§4.11 (VBL transpose + GPUDirect)", exps_apps::vbl),
        (
            "cardioid",
            "§4.1 (Cardioid DSL + placement)",
            exps_apps::cardioid_experiment
        ),
        ("opt", "§4.7 (scheduler + texture + SIMP)", exps_opt::opt),
        ("kavg", "§4.5 (KAVG time-to-quality)", exps_opt::kavg),
    );
    reg_m!(
        r,
        (
            "pipeline-overlap",
            "§4 (streams: serial vs pipelined crossover)",
            exps_pipeline::pipeline_overlap
        ),
        (
            "um-oversubscription",
            "§4.10.1 (UM oversubscription thrash cliff)",
            exps_mem::um_oversubscription
        ),
        (
            "collective-overlap",
            "§4.5/Fig 3 (collectives: flat vs hierarchical vs overlapped)",
            exps_net::collective_overlap
        ),
    );
    reg_p!(
        r,
        (
            "cluster-spike",
            "§4.7 at fleet scale (spike survival by policy)",
            exps_cluster::cluster_spike
        ),
        (
            "cluster-policies",
            "§4.7 at fleet scale (policy shoot-out: SLA vs joules)",
            exps_cluster::cluster_policies
        ),
        (
            "auto-tune",
            "§5 (hand-tuned crossovers rediscovered by search)",
            exps_tune::auto_tune
        ),
    );
    reg!(
        r,
        (
            "lessons",
            "§1–5 (lessons learned, validated)",
            exps_opt::lessons
        ),
        (
            "machines",
            "§2.1 (hardware inventory)",
            exps_core::machines_table
        ),
        (
            "rank-throughput",
            "ISSUE 8 (des kernel: simulated ranks per host-second)",
            exps_des::rank_throughput
        ),
    );
    reg_p!(
        r,
        (
            "portability-matrix",
            "ISSUE 9 (conclusions across machine presets)",
            exps_matrix::portability_matrix
        ),
        (
            "cluster-throughput",
            "ISSUE 10 (incremental cluster serving: placed jobs per host-second)",
            exps_cluster::cluster_throughput
        ),
    );
    debug_assert_eq!(r.ids(), ALL, "ALL must mirror the registry order");
    r
}

/// Dispatch an experiment by id with a throwaway no-op recorder.
pub fn run(id: &str) -> Option<Vec<Table>> {
    run_with_recorder(id, &mut Recorder::noop()).map(|rep| rep.tables)
}

/// Dispatch an experiment by id under a root span, recording into `rec`.
pub fn run_with_recorder(id: &str, rec: &mut Recorder) -> Option<Report> {
    registry().run(id, rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_mirrors_all_in_order() {
        let r = registry();
        assert_eq!(r.ids(), ALL);
        assert_eq!(r.len(), ALL.len());
    }

    #[test]
    fn exactly_the_machine_shaped_experiments_are_matrix_sensitive() {
        let sensitive: Vec<&str> = registry()
            .iter()
            .filter(|e| e.machine_sensitive())
            .map(|e| e.id())
            .collect();
        assert_eq!(
            sensitive,
            [
                "pipeline-overlap",
                "um-oversubscription",
                "collective-overlap"
            ],
            "matrix columns re-run only these; everything else reuses sierra cells"
        );
    }

    #[test]
    fn every_experiment_names_a_paper_artifact() {
        for e in registry().iter() {
            assert!(!e.paper_artifact().is_empty(), "{} has no artifact", e.id());
        }
    }

    #[test]
    fn run_with_recorder_opens_a_root_span_with_phases() {
        let mut rec = Recorder::enabled();
        let rep = run_with_recorder("table1", &mut rec).expect("registered");
        assert!(!rep.tables.is_empty());
        let spans = rec.spans();
        assert_eq!(spans[0].name, "exp:table1");
        assert!(
            spans.iter().any(|s| s.parent == Some(spans[0].id)),
            "phases nest under the root span"
        );
        assert!(rec.gauge_value("exp.activities").is_some());
    }
}
