//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments list                     show the index (id + paper artifact)
//! experiments <id> [flags]             one experiment
//! experiments all  [flags]             everything, in paper order
//!
//! flags:
//!   --json               print the structured JSON document instead of text
//!   --timeline           print the ASCII span timeline to stderr
//!   --bench-dir <dir>    also write BENCH_<id>.json into <dir>
//!                        (or set ICOE_BENCH_DIR)
//! ```
//!
//! Every run happens under a root span `exp:<id>` on an enabled
//! [`hetsim::obs::Recorder`]; `--json` emits the
//! `icoe-experiment-v1` document (tables + counters + gauges).

use hetsim::obs::Recorder;
use icoe::Registry;

struct Opts {
    json: bool,
    timeline: bool,
    bench_dir: Option<std::path::PathBuf>,
}

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut opts = Opts {
        json: false,
        timeline: false,
        bench_dir: std::env::var_os("ICOE_BENCH_DIR").map(Into::into),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--timeline" => opts.timeline = true,
            "--bench-dir" => match args.next() {
                Some(d) => opts.bench_dir = Some(d.into()),
                None => {
                    eprintln!("--bench-dir needs a directory argument");
                    std::process::exit(2);
                }
            },
            other if other.starts_with('-') => {
                eprintln!("unknown flag '{other}'; flags: --json --timeline --bench-dir <dir>");
                std::process::exit(2);
            }
            other => ids.push(other.to_string()),
        }
    }

    let reg = bench::registry();
    match ids.first().map(String::as_str).unwrap_or("list") {
        "list" => {
            println!("available experiments (see DESIGN.md section 3):\n");
            let width = reg.ids().iter().map(|i| i.len()).max().unwrap_or(0);
            for e in reg.iter() {
                println!("  {:width$}  {}", e.id(), e.paper_artifact());
            }
            println!("\nusage: experiments <id> | all  [--json] [--timeline] [--bench-dir <dir>]");
        }
        "all" => {
            for id in reg.ids() {
                if !opts.json {
                    println!("\n################ {id} ################\n");
                }
                run_one(&reg, id, &opts);
            }
        }
        id => {
            if reg.get(id).is_some() {
                run_one(&reg, id, &opts);
            } else {
                eprintln!("unknown experiment '{id}'; try `experiments list`");
                std::process::exit(1);
            }
        }
    }
}

fn run_one(reg: &Registry, id: &str, opts: &Opts) {
    let start = std::time::Instant::now();
    let mut rec = Recorder::enabled();
    let report = reg.run(id, &mut rec).expect("id validated by caller");
    let elapsed = start.elapsed().as_secs_f64();
    if opts.json {
        println!("{}", icoe::exp::document_json(id, &report, &rec, elapsed));
    } else {
        print!("{}", report.render_text());
    }
    if opts.timeline {
        eprint!("{}", rec.render_timeline(100));
    }
    if let Some(dir) = &opts.bench_dir {
        match rec.write_bench_summary(id, dir) {
            Ok(path) => eprintln!("[wrote {}]", path.display()),
            Err(e) => {
                eprintln!("failed to write bench summary for {id}: {e}");
                std::process::exit(1);
            }
        }
    }
    if !opts.json {
        eprintln!("[{id} regenerated in {elapsed:.2} s]");
    }
}
