//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments <id>     one experiment (table1, fig2, table2, fig3, table3,
//!                      fig6, fig8, table4, table5, cretin, md, sw4, vbl,
//!                      cardioid, opt, kavg)
//! experiments all      everything, in paper order
//! experiments list     show the index
//! ```

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "list".to_string());
    match arg.as_str() {
        "list" => {
            println!("available experiments (see DESIGN.md section 3):\n");
            for id in bench::ALL {
                println!("  {id}");
            }
            println!("\nusage: experiments <id> | all");
        }
        "all" => {
            for id in bench::ALL {
                println!("\n################ {id} ################\n");
                run_one(id);
            }
        }
        id => {
            if bench::ALL.contains(&id) {
                run_one(id);
            } else {
                eprintln!("unknown experiment '{id}'; try `experiments list`");
                std::process::exit(1);
            }
        }
    }
}

fn run_one(id: &str) {
    let start = std::time::Instant::now();
    let tables = bench::run(id).expect("id validated by caller");
    for t in tables {
        println!("{}", t.render());
    }
    eprintln!("[{id} regenerated in {:.2} s]", start.elapsed().as_secs_f64());
}
