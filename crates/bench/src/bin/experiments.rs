//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments list                     show the index (id + paper artifact)
//! experiments <id> [flags]             one experiment
//! experiments all  [flags]             everything, in paper order
//! experiments matrix [flags]           the registry across every MATRIX
//!                                      machine preset (portability smoke):
//!                                      machine-sensitive experiments re-run
//!                                      per column, the rest reuse their
//!                                      sierra baseline cells; exits 1 on any
//!                                      failed cell or phantom_link_hits
//!
//! flags:
//!   --json               print the structured JSON document instead of text
//!   --timeline           print the ASCII span timeline to stderr
//!   --bench-dir <dir>    also write BENCH_<id>.json into <dir>
//!                        (or set ICOE_BENCH_DIR)
//!   --jobs <n>           run `all` on an n-worker work-stealing pool
//!                        (or set ICOE_JOBS; default: available
//!                        parallelism). Output is emitted in paper order
//!                        and is byte-identical to --jobs 1.
//!   --param k=v          typed experiment parameters (repeatable):
//!                        seed=<u64>, scale=<f64>, machine=<preset>.
//!                        Defaults regenerate the golden documents
//!                        byte-identically.
//! ```
//!
//! Every run happens under a root span `exp:<id>` on an enabled
//! [`hetsim::obs::Recorder`]; `--json` emits the
//! `icoe-experiment-v1` document (tables + counters + gauges).
//!
//! `all` fans the independent experiments out over `icoe::par`'s
//! work-stealing scoped-thread pool: each experiment runs on its own
//! recorder, its stdout/stderr are buffered, and results are emitted
//! strictly in registration (= paper) order — so parallelism is purely a
//! wall-clock optimisation, never an output change. A panicking
//! experiment is reported with its id on stderr (exit 1) while every
//! other experiment still completes.

use hetsim::obs::Recorder;
use icoe::par::{ExpOutput, ExpRun};
use icoe::{ExpParams, Registry};

struct Opts {
    json: bool,
    timeline: bool,
    bench_dir: Option<std::path::PathBuf>,
    jobs: usize,
    params: ExpParams,
}

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut opts = Opts {
        json: false,
        timeline: false,
        bench_dir: std::env::var_os("ICOE_BENCH_DIR").map(Into::into),
        jobs: icoe::par::default_jobs(),
        params: ExpParams::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--timeline" => opts.timeline = true,
            "--bench-dir" => match args.next() {
                Some(d) => opts.bench_dir = Some(d.into()),
                None => {
                    eprintln!("--bench-dir needs a directory argument");
                    std::process::exit(2);
                }
            },
            "--jobs" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => opts.jobs = n,
                _ => {
                    eprintln!("--jobs needs a positive integer argument");
                    std::process::exit(2);
                }
            },
            "--param" => match args.next() {
                Some(pair) => {
                    if let Err(e) = opts.params.set_pair(&pair) {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
                None => {
                    eprintln!(
                        "--param needs a key=value argument (seed=<u64>, scale=<f64>, machine=<preset>)"
                    );
                    std::process::exit(2);
                }
            },
            other if other.starts_with('-') => {
                eprintln!(
                    "unknown flag '{other}'; flags: --json --timeline --bench-dir <dir> --jobs <n> --param k=v"
                );
                std::process::exit(2);
            }
            other => ids.push(other.to_string()),
        }
    }

    let reg = bench::registry();
    match ids.first().map(String::as_str).unwrap_or("list") {
        "list" => {
            println!("available experiments (see DESIGN.md section 3):\n");
            let width = reg.ids().iter().map(|i| i.len()).max().unwrap_or(0);
            for e in reg.iter() {
                println!("  {:width$}  {}", e.id(), e.paper_artifact());
            }
            println!(
                "\nusage: experiments <id> | all | matrix  [--json] [--timeline] [--bench-dir <dir>] [--jobs <n>] [--param k=v]"
            );
        }
        "all" => run_all(&reg, &opts),
        "matrix" => run_matrix_cmd(&reg, &opts),
        id => {
            if reg.get(id).is_some() {
                run_one(&reg, id, &opts);
            } else {
                eprintln!("unknown experiment '{id}'; try `experiments list`");
                std::process::exit(1);
            }
        }
    }
}

/// Run every experiment — serially for `--jobs 1`, on the work-stealing
/// pool otherwise. Either way the emission order (and every byte of it)
/// is the registry's paper order.
fn run_all(reg: &Registry, opts: &Opts) {
    if opts.jobs <= 1 {
        for id in reg.ids() {
            if !opts.json {
                println!("\n################ {id} ################\n");
            }
            run_one(reg, id, opts);
        }
        return;
    }
    let ids: Vec<&'static str> = reg.ids();
    let runs: Vec<ExpRun> = reg.run_ids_parallel_with(&ids, opts.jobs, &opts.params);
    let mut failed: Vec<&str> = Vec::new();
    for run in &runs {
        match &run.outcome {
            Ok(out) => {
                if !opts.json {
                    println!("\n################ {} ################\n", run.id);
                }
                emit(run.id, out, opts);
            }
            Err(msg) => {
                failed.push(run.id);
                eprintln!("experiment '{}' failed: {msg}", run.id);
            }
        }
    }
    if !failed.is_empty() {
        eprintln!(
            "{} experiment(s) failed: {}",
            failed.len(),
            failed.join(", ")
        );
        std::process::exit(1);
    }
}

/// Run the whole registry across the portability-matrix presets and
/// summarise each column. One line per machine; `--json` makes the lines
/// JSON objects. Any failed cell or phantom-route hit fails the run.
fn run_matrix_cmd(reg: &Registry, opts: &Opts) {
    let machines = hetsim::machines::MATRIX;
    let matrix = reg.run_matrix(machines, opts.jobs, &opts.params);
    let mut bad = false;
    for col in &matrix.columns {
        let (ran, reused, failed) = col.tally();
        let phantom = col.phantom_hits();
        bad |= failed > 0 || phantom > 0.0;
        if opts.json {
            println!(
                "{{\"machine\":\"{}\",\"ran\":{ran},\"reused\":{reused},\"failed\":{failed},\"phantom_link_hits\":{phantom}}}",
                col.machine
            );
        } else {
            println!(
                "{:<14} ran {ran:>2}  reused {reused:>2}  failed {failed}  phantom_link_hits {phantom}",
                col.machine
            );
        }
        for cell in &col.cells {
            if cell.is_err() {
                eprintln!("  cell '{}' failed on {}", cell.id(), col.machine);
            }
        }
    }
    if bad {
        eprintln!("portability matrix has failing or phantom-routed cells");
        std::process::exit(1);
    }
}

fn run_one(reg: &Registry, id: &str, opts: &Opts) {
    let start = std::time::Instant::now();
    let mut rec = Recorder::enabled();
    let report = reg
        .run_with_params(id, &mut rec, &opts.params)
        .expect("id validated by caller");
    let out = ExpOutput {
        report,
        recorder: rec,
        elapsed_s: start.elapsed().as_secs_f64(),
    };
    emit(id, &out, opts);
}

/// The single sink both the serial and the parallel path go through:
/// document/text to stdout, timeline + summaries as side channels.
fn emit(id: &str, out: &ExpOutput, opts: &Opts) {
    if opts.json {
        println!(
            "{}",
            icoe::exp::document_json(id, &out.report, &out.recorder, out.elapsed_s)
        );
    } else {
        print!("{}", out.report.render_text());
    }
    if opts.timeline {
        eprint!("{}", out.recorder.render_timeline(100));
    }
    if let Some(dir) = &opts.bench_dir {
        match out.recorder.write_bench_summary(id, dir) {
            Ok(path) => eprintln!("[wrote {}]", path.display()),
            Err(e) => {
                eprintln!("failed to write bench summary for {id}: {e}");
                std::process::exit(1);
            }
        }
    }
    if !opts.json {
        eprintln!("[{id} regenerated in {:.2} s]", out.elapsed_s);
    }
}
