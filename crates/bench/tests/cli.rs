//! End-to-end tests of the `experiments` binary: structured JSON output
//! and the `BENCH_<id>.json` summary sink (ISSUE acceptance criteria).

use std::process::Command;

use hetsim::obs::json;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
}

/// Cheap ids that exercise four different exps modules.
const JSON_IDS: &[&str] = &["table1", "machines", "fig8", "pipeline-overlap"];

#[test]
fn json_flag_emits_a_parsable_experiment_document() {
    for id in JSON_IDS {
        let out = bin().args([id, "--json"]).output().expect("binary runs");
        assert!(out.status.success(), "{id} exited nonzero: {out:?}");
        let stdout = String::from_utf8(out.stdout).expect("utf8");
        let doc = json::parse(stdout.trim()).unwrap_or_else(|e| panic!("{id}: bad JSON: {e}"));
        assert_eq!(
            doc.get("experiment").and_then(json::Value::as_str),
            Some(*id)
        );
        assert_eq!(
            doc.get("schema").and_then(json::Value::as_str),
            Some("icoe-experiment-v1")
        );
        let tables = doc
            .get("tables")
            .and_then(json::Value::as_array)
            .expect("tables");
        assert!(!tables.is_empty(), "{id} produced no tables");
        let span_count = doc
            .get("span_count")
            .and_then(json::Value::as_f64)
            .expect("span_count");
        assert!(span_count >= 1.0, "{id} ran without a root span");
    }
}

#[test]
fn fig8_bench_dir_writes_a_valid_summary() {
    let dir = std::env::temp_dir().join(format!("icoe-bench-cli-{}", std::process::id()));
    let out = bin()
        .args(["fig8", "--json", "--bench-dir"])
        .arg(&dir)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "fig8 exited nonzero: {out:?}");
    let path = dir.join("BENCH_fig8.json");
    let text = std::fs::read_to_string(&path).expect("summary file written");
    let doc = json::parse(&text).expect("summary parses");
    assert_eq!(
        doc.get("experiment").and_then(json::Value::as_str),
        Some("fig8")
    );
    assert_eq!(
        doc.get("schema").and_then(json::Value::as_str),
        Some("icoe-bench-v1")
    );
    assert!(
        doc.get("wall_s")
            .and_then(json::Value::as_f64)
            .expect("wall_s")
            > 0.0
    );
    let gauges = doc.get("gauges").expect("gauges");
    assert!(
        gauges
            .get("fig8.total_speedup")
            .and_then(json::Value::as_f64)
            .expect("speedup gauge")
            > 1.0,
        "GPU should beat one P8 thread"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pipeline_overlap_timeline_shows_copy_engine_tracks() {
    let out = bin()
        .args(["pipeline-overlap", "--timeline"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "pipeline-overlap exited nonzero: {out:?}"
    );
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    for track in ["gpu0.h2d", "gpu0.d2h", "gpu0.s0"] {
        assert!(
            stderr.contains(track),
            "timeline missing track {track}:\n{stderr}"
        );
    }
}

#[test]
fn um_oversubscription_timeline_shows_um_migrations_on_copy_engines() {
    // ISSUE 3 acceptance: UM migrations appear as engine-track spans on
    // `--timeline` output, and the memory gauges ride into the summary.
    let dir = std::env::temp_dir().join(format!("icoe-bench-um-{}", std::process::id()));
    let out = bin()
        .args(["um-oversubscription", "--json", "--timeline", "--bench-dir"])
        .arg(&dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "um-oversubscription exited nonzero: {out:?}"
    );
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    for track in ["gpu0.h2d", "gpu0.d2h"] {
        assert!(
            stderr.contains(track),
            "timeline missing track {track}:\n{stderr}"
        );
    }
    let text = std::fs::read_to_string(dir.join("BENCH_um-oversubscription.json"))
        .expect("summary file written");
    let doc = json::parse(&text).expect("summary parses");
    let gauges = doc.get("gauges").expect("gauges");
    let cliff = gauges
        .get("um.cliff_ratio_1_5x")
        .and_then(json::Value::as_f64)
        .expect("cliff gauge");
    assert!(cliff >= 3.0, "1.5x oversubscription cliff only {cliff}x");
    assert!(
        gauges.get("mem.gpu0.high_water").is_some(),
        "mem gauges missing from summary"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn collective_overlap_timeline_shows_nic_injection_tracks() {
    // ISSUE 4 acceptance: non-blocking collectives and congested p2p
    // flows land on per-rank `nic<r>.inj` tracks, and the headline
    // overlapped-vs-flat speedup gauge rides into the summary.
    let dir = std::env::temp_dir().join(format!("icoe-bench-net-{}", std::process::id()));
    let out = bin()
        .args(["collective-overlap", "--json", "--timeline", "--bench-dir"])
        .arg(&dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "collective-overlap exited nonzero: {out:?}"
    );
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    for track in ["nic0.inj", "nic1.inj"] {
        assert!(
            stderr.contains(track),
            "timeline missing track {track}:\n{stderr}"
        );
    }
    let text = std::fs::read_to_string(dir.join("BENCH_collective-overlap.json"))
        .expect("summary file written");
    let doc = json::parse(&text).expect("summary parses");
    let gauges = doc.get("gauges").expect("gauges");
    let speedup = gauges
        .get("collective.speedup_64n_256m")
        .and_then(json::Value::as_f64)
        .expect("speedup gauge");
    assert!(
        speedup >= 1.5,
        "overlapped hier allreduce only {speedup}x over flat blocking"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn list_enumerates_the_registry_with_artifacts() {
    let out = bin().arg("list").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    for id in bench::ALL {
        assert!(stdout.contains(id), "list missing id {id}");
    }
    assert!(
        stdout.contains("Fig. 8"),
        "list missing paper artifact column"
    );
}

#[test]
fn unknown_id_exits_nonzero() {
    let out = bin().arg("nope").output().expect("binary runs");
    assert!(!out.status.success());
}

/// Zero out every `"elapsed_s":<number>` field — wall time is the one
/// legitimately nondeterministic byte sequence in a document stream.
fn normalize_elapsed(s: &str) -> String {
    const KEY: &str = "\"elapsed_s\":";
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(at) = rest.find(KEY) {
        let tail = &rest[at + KEY.len()..];
        let end = tail
            .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
            .unwrap_or(tail.len());
        out.push_str(&rest[..at]);
        out.push_str(KEY);
        out.push('0');
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

/// ISSUE 5 acceptance: `all --json --jobs 4` emits exactly one document
/// per registered experiment, in paper order, and — modulo wall time —
/// byte-identical to the serial `--jobs 1` stream.
#[test]
fn all_json_jobs4_is_byte_identical_to_jobs1_in_paper_order() {
    let run = |jobs: &str| {
        let out = bin()
            .args(["all", "--json", "--jobs", jobs])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "--jobs {jobs} exited nonzero: {out:?}"
        );
        String::from_utf8(out.stdout).expect("utf8")
    };
    let par = run("4");
    let ser = run("1");

    // One document per experiment, in registration (= paper) order.
    let docs: Vec<&str> = par.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(docs.len(), bench::ALL.len(), "one JSON document per id");
    for (line, &id) in docs.iter().zip(bench::ALL) {
        let doc = json::parse(line).unwrap_or_else(|e| panic!("{id}: bad JSON: {e}"));
        assert_eq!(
            doc.get("experiment").and_then(json::Value::as_str),
            Some(id),
            "parallel stream out of paper order"
        );
    }

    let (par, ser) = (normalize_elapsed(&par), normalize_elapsed(&ser));
    assert_eq!(
        par, ser,
        "--jobs 4 output differs from --jobs 1 beyond wall time"
    );
}

#[test]
fn bad_jobs_argument_exits_with_usage_error() {
    for args in [&["all", "--jobs", "0"][..], &["all", "--jobs"][..]] {
        let out = bin().args(args).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?} should exit 2");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("--jobs"),
            "{args:?} should explain the flag"
        );
    }
}
