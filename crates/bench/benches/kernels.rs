//! Criterion micro-benchmarks of the real computational kernels (host
//! wall time, not simulated time). One group per hot kernel family the
//! paper names.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
}

/// VBL: 1-D FFT and the 2-D transpose variants.
fn bench_beamline(c: &mut Criterion) {
    use beamline::cplx::C64;
    use beamline::fft::fft_inplace;
    use beamline::transpose::{transpose_naive, transpose_tiled};

    let n = 4096;
    let input: Vec<C64> = (0..n).map(|i| C64::new((i as f64).sin(), 0.0)).collect();
    c.bench_function("vbl/fft_4096", |b| {
        b.iter_batched(
            || input.clone(),
            |mut d| fft_inplace(&mut d, false),
            BatchSize::SmallInput,
        )
    });

    let side = 512;
    let field: Vec<C64> = (0..side * side).map(|i| C64::new(i as f64, 0.0)).collect();
    let mut out = vec![C64::ZERO; side * side];
    c.bench_function("vbl/transpose_naive_512", |b| {
        b.iter(|| transpose_naive(&field, &mut out, side))
    });
    c.bench_function("vbl/transpose_tiled_512", |b| {
        b.iter(|| transpose_tiled(&field, &mut out, side, 32))
    });
}

/// Cardioid: libm vs DSL-lowered rational reaction kernels.
fn bench_cardioid(c: &mut Criterion) {
    use cardioid::IonModel;
    let model = IonModel::new(5);
    let state = IonModel::rest();
    c.bench_function("cardioid/reaction_libm", |b| {
        b.iter(|| model.rhs_exact(&state))
    });
    c.bench_function("cardioid/reaction_rational", |b| {
        b.iter(|| model.rhs_lowered(&state))
    });
}

/// MFEM: partial-assembly apply vs assembled SpMV at order 4.
fn bench_fem(c: &mut Criterion) {
    use fem::op::assemble_diffusion;
    use fem::{DiffusionPA, Mesh2d};
    let mesh = Mesh2d::unit(12, 12, 4);
    let pa = DiffusionPA::new(mesh.clone(), |_, _| 1.0);
    let a = assemble_diffusion(&mesh, |_, _| 1.0);
    let n = mesh.ndof();
    let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
    let mut y = vec![0.0; n];
    c.bench_function("fem/pa_apply_p4", |b| b.iter(|| pa.apply(&x, &mut y)));
    c.bench_function("fem/assembled_spmv_p4", |b| b.iter(|| a.spmv(&x, &mut y)));
}

/// MFEM 3-D: the sum-factorised hex-element apply.
fn bench_fem3d(c: &mut Criterion) {
    use fem::{DiffusionPA3d, Mesh3d};
    let mesh = Mesh3d::unit(4, 4, 4, 3);
    let pa = DiffusionPA3d::new(mesh.clone(), 1.0);
    let x: Vec<f64> = (0..mesh.ndof()).map(|i| (i % 7) as f64).collect();
    let mut y = vec![0.0; mesh.ndof()];
    c.bench_function("fem/pa3d_apply_p3", |b| b.iter(|| pa.apply(&x, &mut y)));
}

/// ddcMD: pair forces through the generic engine.
fn bench_md(c: &mut Criterion) {
    use md::potential::compute_pair_forces;
    use md::{LennardJones, NeighborList, System};
    let sys = System::lattice(1000, 0.5, 0.8, 3);
    let lj = LennardJones::martini();
    let nlist = NeighborList::build(&sys, 2.5, 0.4);
    c.bench_function("md/pair_forces_1000", |b| {
        b.iter_batched(
            || sys.clone(),
            |mut s| compute_pair_forces(&mut s, &nlist, &lj),
            BatchSize::SmallInput,
        )
    });
}

/// HavoqGT: BFS variants on an RMAT graph.
fn bench_graph(c: &mut Criterion) {
    use graphx::{bfs_direction_optimising, bfs_top_down, CsrGraph, RmatParams};
    let g = CsrGraph::rmat(12, RmatParams::default(), 5);
    let root = g.non_isolated_vertex(1);
    c.bench_function("graph/bfs_top_down_s12", |b| {
        b.iter(|| bfs_top_down(&g, root))
    });
    c.bench_function("graph/bfs_direction_opt_s12", |b| {
        b.iter(|| bfs_direction_optimising(&g, root))
    });
}

/// hypre: one BoomerAMG V-cycle on a 2-D Poisson problem.
fn bench_amg(c: &mut Criterion) {
    use amg::{AmgOptions, BoomerAmg};
    use linalg::CsrMatrix;
    let a = CsrMatrix::laplace2d(64, 64);
    let n = a.rows;
    let mut solver = BoomerAmg::setup(a, AmgOptions::default());
    let r = vec![1.0; n];
    let mut z = vec![0.0; n];
    c.bench_function("amg/vcycle_4096", |b| {
        b.iter(|| solver.apply_vcycle(&r, &mut z))
    });
}

/// Cretin: dense rate-matrix population solve.
fn bench_kinetics(c: &mut Criterion) {
    use kinetics::rates::ZoneConditions;
    use kinetics::{solve_populations_direct, AtomicModel, RateMatrix};
    let model = AtomicModel::synthetic(100, 7);
    let rm = RateMatrix::assemble(
        &model,
        ZoneConditions {
            te: 1.0,
            ne: 5.0,
            radiation: 1.0,
        },
        true,
    );
    c.bench_function("kinetics/direct_solve_100", |b| {
        b.iter(|| solve_populations_direct(&rm))
    });
}

/// SW4: the elastic RHS on a small block.
fn bench_seismic(c: &mut Criterion) {
    use seismic::ElasticOperator;
    let op = ElasticOperator::new(24, 24, 24, 0.1, 2.0, 1.0, 1.0);
    let u = vec![1.0; op.view().len()];
    let mut lu = vec![0.0; op.view().len()];
    c.bench_function("sw4/elastic_rhs_24cubed", |b| {
        b.iter(|| op.apply(&u, &mut lu))
    });
}

criterion_group! {
    name = kernels;
    config = configure();
    targets = bench_beamline, bench_cardioid, bench_fem, bench_fem3d, bench_md,
              bench_graph, bench_amg, bench_kinetics, bench_seismic
}
criterion_main!(kernels);
