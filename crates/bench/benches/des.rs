//! Criterion bench for the unified `hetsim::des` event kernel (ISSUE 8):
//! hierarchical allreduce expressed as events, swept over simulated rank
//! counts up to 1M. After the criterion cells a direct throughput probe
//! prints `des.ranks_per_s.r<N> <value>` lines — simulated ranks pushed
//! and popped per host wall-second; the EXPERIMENTS.md target is ≥1M
//! ranks/s at the 1M-rank point on a release build.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use hetsim::des::EventKernel;

/// Ranks per host (the sierra preset's GPU count).
const RANKS_PER_HOST: usize = 4;

#[derive(Debug, Clone, Copy)]
enum Ev {
    Ready(usize),
    HostDone,
    RoundDone,
}

/// One hierarchical allreduce round: every rank posts a gradient-ready
/// event, each host's last arrival schedules the intra-node reduction,
/// the last host schedules the inter-node phase. Returns events popped.
fn allreduce_round(ranks: usize, intra_s: f64, inter_s: f64) -> u64 {
    let hosts = ranks.div_ceil(RANKS_PER_HOST);
    let mut kernel: EventKernel<Ev> = EventKernel::new();
    let mut host_pending = vec![0usize; hosts];
    for r in 0..ranks {
        kernel.schedule((r % 7) as f64 * 0.5e-6, Ev::Ready(r));
        host_pending[r / RANKS_PER_HOST] += 1;
    }
    let mut hosts_pending = hosts;
    let mut popped = 0u64;
    while let Some((key, ev)) = kernel.pop() {
        popped += 1;
        match ev {
            Ev::Ready(r) => {
                let h = r / RANKS_PER_HOST;
                host_pending[h] -= 1;
                if host_pending[h] == 0 {
                    kernel.schedule(key.time + intra_s, Ev::HostDone);
                }
            }
            Ev::HostDone => {
                hosts_pending -= 1;
                if hosts_pending == 0 {
                    kernel.schedule(key.time + inter_s, Ev::RoundDone);
                }
            }
            Ev::RoundDone => break,
        }
    }
    popped
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
}

/// Criterion cells: one allreduce round per iteration at each rank count.
fn bench_rank_sweep(c: &mut Criterion) {
    for ranks in [1024usize, 65536, 1 << 20] {
        c.bench_function(&format!("des/hier_allreduce_r{ranks}"), |b| {
            b.iter(|| allreduce_round(ranks, 1e-3, 3e-3));
        });
    }
}

/// The headline gauge: simulated ranks per host wall-second, printed in
/// the greppable `des.ranks_per_s.r<N> <value>` form.
fn bench_ranks_per_s(c: &mut Criterion) {
    for ranks in [65536usize, 1 << 20] {
        let rounds = if ranks >= 1 << 20 { 3 } else { 10 };
        let start = Instant::now();
        let mut popped = 0u64;
        for _ in 0..rounds {
            popped += allreduce_round(ranks, 1e-3, 3e-3);
        }
        let wall = start.elapsed().as_secs_f64().max(1e-12);
        let rps = (ranks * rounds) as f64 / wall;
        eprintln!("des.ranks_per_s.r{ranks} {rps:.0}  ({popped} events in {wall:.3} s)");
    }
    // Keep the harness shape: one trivial criterion cell so the group is
    // never empty even if the sweep above is trimmed.
    c.bench_function("des/kernel_push_pop_1k", |b| {
        b.iter(|| {
            let mut k: EventKernel<u32> = EventKernel::new();
            for i in 0..1024u32 {
                k.schedule((i % 13) as f64, i);
            }
            let mut n = 0u32;
            while k.pop().is_some() {
                n += 1;
            }
            n
        });
    });
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_rank_sweep, bench_ranks_per_s
}
criterion_main!(benches);
