//! Ablation benchmarks: real host timings of the design choices DESIGN.md
//! calls out, so each claimed mechanism is measurable and not just
//! modelled.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
}

/// ParaDyn (Fig 6): does fusing loops actually speed up the interpreter on
/// a real CPU (cache reuse), not just in the load/store model?
fn ablation_paradyn(c: &mut Criterion) {
    use paradyn::machine::{run, run_baseline};
    use paradyn::{dead_store_elimination, slnsp_fuse, Program};
    let n = 100_000;
    let prog = Program::paradyn_kernel(n);
    let inputs: Vec<(usize, Vec<f64>)> = (0..3)
        .map(|a| (a, (0..n).map(|i| ((i + a) % 13) as f64).collect()))
        .collect();
    c.bench_function("paradyn/baseline", |b| {
        b.iter(|| run_baseline(&prog, &inputs))
    });
    let groups = slnsp_fuse(&prog);
    let elide = dead_store_elimination(&prog, &groups);
    c.bench_function("paradyn/slnsp_dse", |b| {
        b.iter(|| run(&prog, &inputs, &groups, &elide))
    });
}

/// Umpire (§4.10.5): pooled vs raw allocation in a timestep loop.
fn ablation_pool(c: &mut Criterion) {
    use portal::{Pool, Space};
    c.bench_function("pool/pooled_alloc_free", |b| {
        let pool = Pool::new(Space::Device);
        b.iter(|| {
            let (blk, _) = pool.alloc(1 << 16);
            pool.free(blk);
        })
    });
    c.bench_function("pool/fresh_pool_each_time", |b| {
        b.iter(|| {
            let pool = Pool::new(Space::Device);
            let (blk, _) = pool.alloc(1 << 16);
            pool.free(blk);
        })
    });
}

/// Portal (§3.3): fork-join overhead of the threaded forall vs serial for
/// a small loop — the ParaDyn "many small loops" problem on the host.
fn ablation_forall(c: &mut Criterion) {
    use portal::exec::{reduce_parallel, run_parallel};
    let small = 512usize;
    let large = 1 << 20;
    c.bench_function("forall/serial_small", |b| {
        b.iter(|| {
            run_parallel(small, 1, &|i| {
                std::hint::black_box(i);
            })
        })
    });
    c.bench_function("forall/threads8_small", |b| {
        b.iter(|| {
            run_parallel(small, 8, &|i| {
                std::hint::black_box(i);
            })
        })
    });
    c.bench_function("forall/reduce_serial_1m", |b| {
        b.iter(|| reduce_parallel(large, 1, &|i| i as f64))
    });
    c.bench_function("forall/reduce_threads8_1m", |b| {
        b.iter(|| reduce_parallel(large, 8, &|i| i as f64))
    });
}

/// Cardioid DSL: rational degree vs accuracy/throughput trade (the knob
/// Melodee tunes).
fn ablation_rational_degree(c: &mut Criterion) {
    use cardioid::RationalApprox;
    for degree in [3usize, 6, 10] {
        let r = RationalApprox::fit(f64::exp, -5.0, 5.0, degree, degree, 40 * degree);
        c.bench_function(&format!("rational/eval_deg{degree}"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..64 {
                    acc += r.eval(-5.0 + 10.0 * (i as f64) / 63.0);
                }
                acc
            })
        });
    }
    c.bench_function("rational/libm_exp_64", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..64 {
                acc += (-5.0f64 + 10.0 * (i as f64) / 63.0).exp();
            }
            acc
        })
    });
}

/// MFEM JIT (§4.10.3): dynamic loop bounds vs monomorphised (compile-time
/// constant) sum-factorisation kernels — the real Rust analogue of the
/// Acrotensor/OCCA runtime-compilation work.
fn ablation_fem_jit(c: &mut Criterion) {
    use fem::{apply_diffusion_dispatch, DiffusionPA, Mesh2d};
    for p in [2usize, 4] {
        let mesh = Mesh2d::unit(16, 16, p);
        let pa = DiffusionPA::new(mesh.clone(), |_, _| 1.0);
        let x: Vec<f64> = (0..mesh.ndof()).map(|i| (i % 11) as f64).collect();
        let mut y = vec![0.0; mesh.ndof()];
        c.bench_function(&format!("fem_jit/dynamic_p{p}"), |b| {
            b.iter(|| pa.apply(&x, &mut y))
        });
        c.bench_function(&format!("fem_jit/const_p{p}"), |b| {
            b.iter(|| apply_diffusion_dispatch(&pa, &x, &mut y))
        });
    }
}

/// Cardioid (§4.1): run-time polynomial coefficients vs compile-time
/// constants (frozen fixed-degree evaluator).
fn ablation_rational_const(c: &mut Criterion) {
    use cardioid::{RationalApprox, RationalConst};
    let r = RationalApprox::fit(f64::exp, -5.0, 5.0, 6, 6, 240);
    let frozen: RationalConst<7, 7> = RationalConst::freeze(&r);
    c.bench_function("rational/runtime_coeffs_64", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..64 {
                acc += r.eval(-5.0 + 10.0 * (i as f64) / 63.0);
            }
            acc
        })
    });
    c.bench_function("rational/const_coeffs_64", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..64 {
                acc += frozen.eval(-5.0 + 10.0 * (i as f64) / 63.0);
            }
            acc
        })
    });
}

criterion_group! {
    name = ablations;
    config = configure();
    targets = ablation_paradyn, ablation_pool, ablation_forall, ablation_rational_degree,
              ablation_fem_jit, ablation_rational_const
}
criterion_main!(ablations);
