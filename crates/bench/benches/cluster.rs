//! Criterion benches for the ISSUE-10 incremental cluster serving loop.
//!
//! Three layers:
//!
//! * **Serving sweep** — full streams through `ClusterSim::run` across
//!   jobs 10k/100k × fleet 64/1000 nodes × FCFS/SJF/SLA-Urgency. The
//!   simulator is built once per cell and reused, so criterion times the
//!   warm steady state the incremental design optimizes for.
//! * **Million-job probe** — the acceptance bar of ISSUE 10: 1M jobs,
//!   FCFS, 1k-node fleet, measured directly (criterion's sample loop is
//!   wasteful at ~1 s/iteration) and reported as placed jobs per
//!   host-second on stderr. Expected ≥1M jobs/s in release on a modern
//!   host; the CI smoke enforces a conservative 100k floor via the
//!   `cluster-throughput` experiment.
//! * **Allocation audit** — the counting global allocator (the
//!   `benches/recorder.rs` harness extended to the serving loop)
//!   measures allocations across a *warm* 100k-job serve with a noop
//!   recorder and asserts the steady state rounds to **0 allocations
//!   per event** (< 0.01; the residue is rare calendar-bucket pool
//!   growth and the final wait-percentile sort).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bench::exps_cluster::{fleet_scaled, rate_for};
use criterion::{criterion_group, criterion_main, Criterion};
use hetsim::obs::Recorder;
use icoe::cluster::{job_stream, ClusterJob, ClusterSim, StreamConfig};
use sched::{Fcfs, SchedPolicy, Sjf, SlaUrgency};

/// System allocator wrapper that counts allocations, so the bench can
/// assert the serving loop's steady state stays off the allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
}

fn stream(jobs: usize, nodes: usize) -> Vec<ClusterJob> {
    let mut cfg = StreamConfig::baseline(jobs, 10);
    cfg.base_rate = rate_for(nodes);
    job_stream(&cfg)
}

/// The serving sweep: jobs × fleet × policy, warm simulator per cell.
fn bench_serving(c: &mut Criterion) {
    let rec = Recorder::noop();
    for nodes in [64usize, 1000] {
        let fleet = fleet_scaled(nodes);
        for jobs_n in [10_000usize, 100_000] {
            let jobs = stream(jobs_n, nodes);
            for p in [&Fcfs as &dyn SchedPolicy, &Sjf, &SlaUrgency] {
                let mut sim = ClusterSim::new(&fleet);
                sim.run(&jobs, p, &rec); // warm the buffers out of the timing
                let label = format!(
                    "cluster/serve_j{}k_n{}_{}",
                    jobs_n / 1000,
                    nodes,
                    p.name().to_lowercase().replace('-', "_")
                );
                c.bench_function(&label, |b| {
                    b.iter(|| {
                        let m = sim.run(&jobs, p, &rec);
                        assert_eq!(m.completed, jobs.len());
                    })
                });
            }
        }
    }
}

/// The ISSUE-10 acceptance probe: 1M jobs, FCFS, 1k-node fleet, timed
/// directly on a warm simulator. Prints placed jobs per host-second.
fn million_job_probe(_c: &mut Criterion) {
    let fleet = fleet_scaled(1000);
    let jobs = stream(1_000_000, 1000);
    let rec = Recorder::noop();
    let mut sim = ClusterSim::new(&fleet);
    sim.run(&jobs, &Fcfs, &rec); // warm
    let start = Instant::now();
    let m = sim.run(&jobs, &Fcfs, &rec);
    let wall = start.elapsed().as_secs_f64().max(1e-12);
    assert_eq!(m.completed, jobs.len());
    eprintln!(
        "cluster/million_job_probe: {} jobs placed in {:.3} s -> {:.0} jobs/s \
         (acceptance bar: >= 1,000,000 jobs/s release)",
        m.completed,
        wall,
        m.completed as f64 / wall
    );
}

/// The allocation audit: a warm serve must not touch the allocator in
/// its steady state (noop recorder). Asserted, not just reported — this
/// is the ISSUE-10 "0 allocations per event" acceptance criterion.
fn allocation_audit(_c: &mut Criterion) {
    let fleet = fleet_scaled(1000);
    let jobs = stream(100_000, 1000);
    let rec = Recorder::noop();
    let mut sim = ClusterSim::new(&fleet);
    sim.run(&jobs, &Fcfs, &rec); // warm: buffers grown, arena sized

    // Arrive + Finish per job, plus the initial park sweep and governor
    // park checks — a conservative lower bound on events processed.
    let events = (2 * jobs.len()) as f64;
    let before = ALLOCS.load(Ordering::Relaxed);
    let m = sim.run(&jobs, &Fcfs, &rec);
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(m.completed, jobs.len());
    let per_event = allocs as f64 / events;
    eprintln!(
        "cluster/steady_state_allocs: {allocs} allocations across {} events \
         ({per_event:.4} allocs/event)",
        events as u64
    );
    assert!(
        per_event < 0.01,
        "steady-state serving loop must stay off the allocator: \
         {allocs} allocs / {events} events = {per_event:.4}"
    );
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_serving, million_job_probe, allocation_audit
}
criterion_main!(benches);
