//! Criterion benches for the observability hot path and the parallel
//! experiment engine (ISSUE 5).
//!
//! Two layers:
//!
//! * **Recorder micro-benches** — `record_span`/`incr` through the string
//!   path vs the pre-interned `*_sym` path (the `Sim::launch_on` fast
//!   path), plus the `hot_list`/`render_timeline` sinks on a populated
//!   recorder. A counting global allocator reports allocations per
//!   span on the steady-state interned path (expected: 0 once the
//!   span vector has grown to capacity).
//! * **Registry end-to-end** — a four-experiment slice of the paper
//!   registry through `run_ids_parallel` at jobs=1 vs jobs=4. On a
//!   multi-core host the jobs=4 number is the wall-clock win; the
//!   output bytes are identical either way (see
//!   `tests/tests/golden_determinism.rs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use hetsim::obs::{Recorder, SpanKind};

/// System allocator wrapper that counts allocations, so the bench can
/// report allocs/span on the interned steady-state path.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
}

const SPANS_PER_ITER: usize = 1024;

/// The pre-interning hot path: every span/metric name arrives as `&str`
/// and must be hashed (and, before ISSUE 5, allocated) per event.
fn bench_string_path(c: &mut Criterion) {
    let rec = Recorder::enabled();
    c.bench_function("obs/record_span_str_1k", |b| {
        b.iter(|| {
            rec.reset();
            for i in 0..SPANS_PER_ITER {
                let t = i as f64;
                rec.record_span("spmv", SpanKind::Kernel, "gpu0.s0", t, t + 1.0);
                rec.incr("sim.flops", 1.0e9);
            }
        })
    });
}

/// The `Sim::launch_on` fast path: names interned once, handles reused.
fn bench_interned_path(c: &mut Criterion) {
    let rec = Recorder::enabled();
    let name = rec.intern("spmv");
    let track = rec.intern("gpu0.s0");
    let flops = rec.intern("sim.flops");
    c.bench_function("obs/record_span_sym_1k", |b| {
        b.iter(|| {
            rec.reset();
            for i in 0..SPANS_PER_ITER {
                let t = i as f64;
                rec.record_span_sym(name, SpanKind::Kernel, track, t, t + 1.0);
                rec.incr_sym(flops, 1.0e9);
            }
        })
    });

    // Steady state: buffers grown, symbols interned — the loop body
    // should not touch the allocator at all.
    rec.reset();
    for i in 0..SPANS_PER_ITER {
        let t = i as f64;
        rec.record_span_sym(name, SpanKind::Kernel, track, t, t + 1.0);
        rec.incr_sym(flops, 1.0e9);
    }
    rec.reset();
    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..SPANS_PER_ITER {
        let t = i as f64;
        rec.record_span_sym(name, SpanKind::Kernel, track, t, t + 1.0);
        rec.incr_sym(flops, 1.0e9);
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    eprintln!(
        "obs/steady_state_allocs: {allocs} allocations across {SPANS_PER_ITER} interned \
         spans + counters ({:.3} allocs/span)",
        allocs as f64 / SPANS_PER_ITER as f64
    );
}

/// The render sinks over a realistically-populated recorder.
fn bench_sinks(c: &mut Criterion) {
    let rec = Recorder::enabled();
    for i in 0..512 {
        let t = i as f64;
        let name = ["spmv", "axpy", "halo", "fft"][i % 4];
        let track = ["gpu0.s0", "gpu0.s1", "gpu0.h2d", "cpu"][i % 4];
        rec.record_span(name, SpanKind::Kernel, track, t, t + 1.5);
        rec.incr(name, 1.0);
    }
    c.bench_function("obs/hot_list_512", |b| b.iter(|| rec.hot_list()));
    c.bench_function("obs/render_timeline_512", |b| {
        b.iter(|| rec.render_timeline(100))
    });
    c.bench_function("obs/to_jsonl_512", |b| b.iter(|| rec.to_jsonl()));
}

/// Four cheap experiments end-to-end through the engine, serial vs the
/// work-stealing pool. Byte-identical output, different wall-clock.
fn bench_registry(c: &mut Criterion) {
    const IDS: &[&str] = &["table1", "machines", "fig8", "pipeline-overlap"];
    let reg = bench::registry();
    c.bench_function("engine/four_exps_jobs1", |b| {
        b.iter(|| {
            let runs = reg.run_ids_parallel(IDS, 1);
            assert!(runs.iter().all(|r| r.outcome.is_ok()));
        })
    });
    c.bench_function("engine/four_exps_jobs4", |b| {
        b.iter(|| {
            let runs = reg.run_ids_parallel(IDS, 4);
            assert!(runs.iter().all(|r| r.outcome.is_ok()));
        })
    });
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_string_path, bench_interned_path, bench_sinks, bench_registry
}
criterion_main!(benches);
