//! Boxes, patches, and the refine/coarsen transfer operators.

/// An index box `[lo, hi)` in 2-D cell space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoxRegion {
    pub lo: (usize, usize),
    pub hi: (usize, usize),
}

impl BoxRegion {
    pub fn new(lo: (usize, usize), hi: (usize, usize)) -> BoxRegion {
        assert!(lo.0 <= hi.0 && lo.1 <= hi.1, "degenerate box");
        BoxRegion { lo, hi }
    }

    pub fn nx(&self) -> usize {
        self.hi.0 - self.lo.0
    }

    pub fn ny(&self) -> usize {
        self.hi.1 - self.lo.1
    }

    pub fn cells(&self) -> usize {
        self.nx() * self.ny()
    }

    pub fn contains(&self, i: usize, j: usize) -> bool {
        i >= self.lo.0 && i < self.hi.0 && j >= self.lo.1 && j < self.hi.1
    }

    /// The box refined by `ratio`.
    pub fn refined(&self, ratio: usize) -> BoxRegion {
        BoxRegion::new(
            (self.lo.0 * ratio, self.lo.1 * ratio),
            (self.hi.0 * ratio, self.hi.1 * ratio),
        )
    }

    /// Grow by `g` cells on each side, clamped to `[0, bound)`.
    pub fn grown(&self, g: usize, bound: (usize, usize)) -> BoxRegion {
        BoxRegion::new(
            (self.lo.0.saturating_sub(g), self.lo.1.saturating_sub(g)),
            ((self.hi.0 + g).min(bound.0), (self.hi.1 + g).min(bound.1)),
        )
    }
}

/// A patch: one field of `ncomp` components over a box, with `ghost`
/// ghost-cell layers on each side.
#[derive(Debug, Clone, PartialEq)]
pub struct Patch {
    pub region: BoxRegion,
    pub ghost: usize,
    pub ncomp: usize,
    /// Data layout: component-major, then row-major over the grown box.
    pub data: Vec<f64>,
}

impl Patch {
    pub fn new(region: BoxRegion, ghost: usize, ncomp: usize) -> Patch {
        let nx = region.nx() + 2 * ghost;
        let ny = region.ny() + 2 * ghost;
        Patch {
            region,
            ghost,
            ncomp,
            data: vec![0.0; ncomp * nx * ny],
        }
    }

    /// Padded dimensions.
    pub fn padded(&self) -> (usize, usize) {
        (
            self.region.nx() + 2 * self.ghost,
            self.region.ny() + 2 * self.ghost,
        )
    }

    /// Flat index for component `c` at *local interior* coordinates
    /// `(i, j)` (0-based, excluding ghosts). Ghosts are addressed by
    /// passing `i + ghost` to [`Patch::idx_padded`].
    #[inline]
    pub fn idx(&self, c: usize, i: usize, j: usize) -> usize {
        self.idx_padded(c, i + self.ghost, j + self.ghost)
    }

    /// Flat index in the padded (ghost-inclusive) coordinate system.
    #[inline]
    pub fn idx_padded(&self, c: usize, i: usize, j: usize) -> usize {
        let (nx, ny) = self.padded();
        debug_assert!(i < nx && j < ny && c < self.ncomp);
        (c * nx + i) * ny + j
    }

    pub fn get(&self, c: usize, i: usize, j: usize) -> f64 {
        self.data[self.idx(c, i, j)]
    }

    pub fn set(&mut self, c: usize, i: usize, j: usize, v: f64) {
        let k = self.idx(c, i, j);
        self.data[k] = v;
    }

    /// Fill ghost layers by copying the nearest interior cell (outflow /
    /// zero-gradient physical boundary).
    pub fn fill_ghosts_outflow(&mut self) {
        let (nx, ny) = self.padded();
        let g = self.ghost;
        for c in 0..self.ncomp {
            for i in 0..nx {
                for j in 0..ny {
                    let ii = i.clamp(g, nx - g - 1);
                    let jj = j.clamp(g, ny - g - 1);
                    if ii != i || jj != j {
                        let v = self.data[self.idx_padded(c, ii, jj)];
                        let k = self.idx_padded(c, i, j);
                        self.data[k] = v;
                    }
                }
            }
        }
    }

    /// Per-component sum over the interior (for conservation checks).
    pub fn interior_sum(&self, c: usize) -> f64 {
        let mut s = 0.0;
        for i in 0..self.region.nx() {
            for j in 0..self.region.ny() {
                s += self.get(c, i, j);
            }
        }
        s
    }
}

/// Conservative prolongation (piecewise-constant injection): each fine
/// cell takes its coarse parent's value.
pub fn prolong_constant(coarse: &Patch, fine: &mut Patch, ratio: usize) {
    assert_eq!(coarse.ncomp, fine.ncomp);
    for c in 0..fine.ncomp {
        for fi in 0..fine.region.nx() {
            for fj in 0..fine.region.ny() {
                let gi = (fine.region.lo.0 + fi) / ratio;
                let gj = (fine.region.lo.1 + fj) / ratio;
                let ci = gi - coarse.region.lo.0;
                let cj = gj - coarse.region.lo.1;
                fine.set(c, fi, fj, coarse.get(c, ci, cj));
            }
        }
    }
}

/// Conservative restriction (cell averaging): each coarse cell under the
/// fine patch becomes the mean of its `ratio^2` children.
pub fn restrict_average(fine: &Patch, coarse: &mut Patch, ratio: usize) {
    assert_eq!(coarse.ncomp, fine.ncomp);
    let inv = 1.0 / (ratio * ratio) as f64;
    // Coarse cells fully covered by the fine region.
    let clo = (fine.region.lo.0 / ratio, fine.region.lo.1 / ratio);
    let chi = (fine.region.hi.0 / ratio, fine.region.hi.1 / ratio);
    for c in 0..coarse.ncomp {
        for gi in clo.0..chi.0 {
            for gj in clo.1..chi.1 {
                let mut s = 0.0;
                for a in 0..ratio {
                    for b in 0..ratio {
                        let fi = gi * ratio + a - fine.region.lo.0;
                        let fj = gj * ratio + b - fine.region.lo.1;
                        s += fine.get(c, fi, fj);
                    }
                }
                let ci = gi - coarse.region.lo.0;
                let cj = gj - coarse.region.lo.1;
                coarse.set(c, ci, cj, s * inv);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_geometry() {
        let b = BoxRegion::new((2, 3), (6, 9));
        assert_eq!(b.nx(), 4);
        assert_eq!(b.ny(), 6);
        assert_eq!(b.cells(), 24);
        assert!(b.contains(2, 3) && !b.contains(6, 3));
        assert_eq!(b.refined(2), BoxRegion::new((4, 6), (12, 18)));
    }

    #[test]
    fn grown_clamps_at_domain() {
        let b = BoxRegion::new((0, 1), (4, 5));
        let g = b.grown(2, (6, 6));
        assert_eq!(g, BoxRegion::new((0, 0), (6, 6)));
    }

    #[test]
    fn ghost_fill_copies_edges() {
        let mut p = Patch::new(BoxRegion::new((0, 0), (3, 3)), 2, 1);
        for i in 0..3 {
            for j in 0..3 {
                p.set(0, i, j, (i * 3 + j) as f64);
            }
        }
        p.fill_ghosts_outflow();
        // Ghost to the left of (0,0) equals interior (0,0).
        assert_eq!(p.data[p.idx_padded(0, 0, 2)], p.get(0, 0, 0));
        // Corner ghost equals the interior corner.
        assert_eq!(p.data[p.idx_padded(0, 0, 0)], p.get(0, 0, 0));
        let (nx, ny) = p.padded();
        assert_eq!(p.data[p.idx_padded(0, nx - 1, ny - 1)], p.get(0, 2, 2));
    }

    #[test]
    fn restrict_of_prolong_is_identity() {
        let ratio = 2;
        let cbox = BoxRegion::new((0, 0), (4, 4));
        let mut coarse = Patch::new(cbox, 0, 2);
        for c in 0..2 {
            for i in 0..4 {
                for j in 0..4 {
                    coarse.set(c, i, j, (c * 100 + i * 10 + j) as f64);
                }
            }
        }
        let mut fine = Patch::new(cbox.refined(ratio), 0, 2);
        prolong_constant(&coarse, &mut fine, ratio);
        let mut back = Patch::new(cbox, 0, 2);
        restrict_average(&fine, &mut back, ratio);
        assert_eq!(back.data, coarse.data);
    }

    #[test]
    fn restriction_conserves_totals() {
        let ratio = 2;
        let fbox = BoxRegion::new((0, 0), (8, 8));
        let mut fine = Patch::new(fbox, 0, 1);
        for i in 0..8 {
            for j in 0..8 {
                fine.set(0, i, j, ((i * 13 + j * 7) % 5) as f64);
            }
        }
        let mut coarse = Patch::new(BoxRegion::new((0, 0), (4, 4)), 0, 1);
        restrict_average(&fine, &mut coarse, ratio);
        let fine_total = fine.interior_sum(0);
        let coarse_total = coarse.interior_sum(0) * (ratio * ratio) as f64;
        assert!((fine_total - coarse_total).abs() < 1e-10);
    }
}
