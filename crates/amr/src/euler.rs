//! CleverLeaf-style compressible Euler solver on a patch.
//!
//! Conserved variables `(rho, rho u, rho v, E)`, ideal gas, first-order
//! Godunov with Rusanov (local Lax-Friedrichs) fluxes — robust, positive,
//! and exactly conservative on a single level.

use crate::grid::{BoxRegion, Patch};

/// Ratio of specific heats.
pub const GAMMA: f64 = 1.4;

/// Conserved components.
pub const RHO: usize = 0;
pub const MX: usize = 1;
pub const MY: usize = 2;
pub const EN: usize = 3;
pub const NCOMP: usize = 4;

/// A primitive-variable state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EulerState {
    pub rho: f64,
    pub u: f64,
    pub v: f64,
    pub p: f64,
}

impl EulerState {
    pub fn conserved(&self) -> [f64; NCOMP] {
        let e = self.p / (GAMMA - 1.0) + 0.5 * self.rho * (self.u * self.u + self.v * self.v);
        [self.rho, self.rho * self.u, self.rho * self.v, e]
    }

    pub fn from_conserved(q: &[f64; NCOMP]) -> EulerState {
        let rho = q[RHO].max(1e-12);
        let u = q[MX] / rho;
        let v = q[MY] / rho;
        let p = (GAMMA - 1.0) * (q[EN] - 0.5 * rho * (u * u + v * v));
        EulerState { rho, u, v, p }
    }

    pub fn sound_speed(&self) -> f64 {
        (GAMMA * self.p.max(1e-12) / self.rho).sqrt()
    }
}

/// An Euler field on one patch with spacing `h`.
#[derive(Debug, Clone)]
pub struct EulerPatch {
    pub patch: Patch,
    pub h: f64,
}

fn flux_x(q: &[f64; NCOMP]) -> [f64; NCOMP] {
    let s = EulerState::from_conserved(q);
    [q[MX], q[MX] * s.u + s.p, q[MY] * s.u, (q[EN] + s.p) * s.u]
}

fn flux_y(q: &[f64; NCOMP]) -> [f64; NCOMP] {
    let s = EulerState::from_conserved(q);
    [q[MY], q[MX] * s.v, q[MY] * s.v + s.p, (q[EN] + s.p) * s.v]
}

/// Rusanov numerical flux between left and right states along `axis`.
fn rusanov(ql: &[f64; NCOMP], qr: &[f64; NCOMP], axis: usize) -> [f64; NCOMP] {
    let sl = EulerState::from_conserved(ql);
    let sr = EulerState::from_conserved(qr);
    let (vl, vr) = if axis == 0 {
        (sl.u, sr.u)
    } else {
        (sl.v, sr.v)
    };
    let smax = (vl.abs() + sl.sound_speed()).max(vr.abs() + sr.sound_speed());
    let (fl, fr) = if axis == 0 {
        (flux_x(ql), flux_x(qr))
    } else {
        (flux_y(ql), flux_y(qr))
    };
    let mut out = [0.0; NCOMP];
    for c in 0..NCOMP {
        out[c] = 0.5 * (fl[c] + fr[c]) - 0.5 * smax * (qr[c] - ql[c]);
    }
    out
}

impl EulerPatch {
    pub fn new(region: BoxRegion, h: f64) -> EulerPatch {
        EulerPatch {
            patch: Patch::new(region, 1, NCOMP),
            h,
        }
    }

    /// Initialise every cell from `f(x, y)` (cell centres, global coords).
    pub fn init(&mut self, f: impl Fn(f64, f64) -> EulerState) {
        let region = self.patch.region;
        for i in 0..region.nx() {
            for j in 0..region.ny() {
                let x = (region.lo.0 + i) as f64 * self.h + 0.5 * self.h;
                let y = (region.lo.1 + j) as f64 * self.h + 0.5 * self.h;
                let q = f(x, y).conserved();
                for c in 0..NCOMP {
                    self.patch.set(c, i, j, q[c]);
                }
            }
        }
    }

    fn load(&self, i: usize, j: usize) -> [f64; NCOMP] {
        // Padded coordinates (interior cell (0,0) is padded (1,1)).
        [
            self.patch.data[self.patch.idx_padded(RHO, i, j)],
            self.patch.data[self.patch.idx_padded(MX, i, j)],
            self.patch.data[self.patch.idx_padded(MY, i, j)],
            self.patch.data[self.patch.idx_padded(EN, i, j)],
        ]
    }

    /// Largest stable timestep (CFL 0.4).
    pub fn stable_dt(&self) -> f64 {
        let mut smax = 1e-12f64;
        for i in 0..self.patch.region.nx() {
            for j in 0..self.patch.region.ny() {
                let q = [
                    self.patch.get(RHO, i, j),
                    self.patch.get(MX, i, j),
                    self.patch.get(MY, i, j),
                    self.patch.get(EN, i, j),
                ];
                let s = EulerState::from_conserved(&q);
                smax = smax.max(s.u.abs().max(s.v.abs()) + s.sound_speed());
            }
        }
        0.4 * self.h / smax
    }

    /// One conservative update of size `dt` (ghosts must be filled).
    pub fn step(&mut self, dt: f64) {
        self.patch.fill_ghosts_outflow();
        let (nx, ny) = (self.patch.region.nx(), self.patch.region.ny());
        let lam = dt / self.h;
        let mut new = self.patch.data.clone();
        for i in 0..nx {
            for j in 0..ny {
                let (pi, pj) = (i + 1, j + 1); // padded coords (ghost = 1)
                let qc = self.load(pi, pj);
                let qw = self.load(pi - 1, pj);
                let qe = self.load(pi + 1, pj);
                let qs = self.load(pi, pj - 1);
                let qn = self.load(pi, pj + 1);
                let fw = rusanov(&qw, &qc, 0);
                let fe = rusanov(&qc, &qe, 0);
                let fs = rusanov(&qs, &qc, 1);
                let fn_ = rusanov(&qc, &qn, 1);
                for c in 0..NCOMP {
                    let k = self.patch.idx(c, i, j);
                    new[k] = qc[c] - lam * (fe[c] - fw[c]) - lam * (fn_[c] - fs[c]);
                }
            }
        }
        self.patch.data = new;
    }

    /// Density gradient magnitude at an interior cell (for tagging).
    pub fn density_gradient(&self, i: usize, j: usize) -> f64 {
        let nx = self.patch.region.nx();
        let ny = self.patch.region.ny();
        let c = self.patch.get(RHO, i, j);
        let e = if i + 1 < nx {
            self.patch.get(RHO, i + 1, j)
        } else {
            c
        };
        let w = if i > 0 {
            self.patch.get(RHO, i - 1, j)
        } else {
            c
        };
        let n = if j + 1 < ny {
            self.patch.get(RHO, i, j + 1)
        } else {
            c
        };
        let s = if j > 0 {
            self.patch.get(RHO, i, j - 1)
        } else {
            c
        };
        (((e - w) / 2.0).powi(2) + ((n - s) / 2.0).powi(2)).sqrt() / self.h
    }

    pub fn total(&self, c: usize) -> f64 {
        self.patch.interior_sum(c) * self.h * self.h
    }

    pub fn min_density(&self) -> f64 {
        let mut m = f64::INFINITY;
        for i in 0..self.patch.region.nx() {
            for j in 0..self.patch.region.ny() {
                m = m.min(self.patch.get(RHO, i, j));
            }
        }
        m
    }
}

/// The Sod shock-tube initial condition (membrane at `x = 0.5`).
pub fn sod(x: f64, _y: f64) -> EulerState {
    if x < 0.5 {
        EulerState {
            rho: 1.0,
            u: 0.0,
            v: 0.0,
            p: 1.0,
        }
    } else {
        EulerState {
            rho: 0.125,
            u: 0.0,
            v: 0.0,
            p: 0.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sod_tube(n: usize) -> EulerPatch {
        let mut p = EulerPatch::new(BoxRegion::new((0, 0), (n, 4)), 1.0 / n as f64);
        p.init(sod);
        p
    }

    fn run_to(p: &mut EulerPatch, t_end: f64) {
        let mut t = 0.0;
        while t < t_end {
            let dt = p.stable_dt().min(t_end - t);
            p.step(dt);
            t += dt;
        }
    }

    #[test]
    fn primitive_conserved_roundtrip() {
        let s = EulerState {
            rho: 0.7,
            u: 1.2,
            v: -0.3,
            p: 2.5,
        };
        let back = EulerState::from_conserved(&s.conserved());
        assert!((back.rho - s.rho).abs() < 1e-12);
        assert!((back.u - s.u).abs() < 1e-12);
        assert!((back.p - s.p).abs() < 1e-12);
    }

    #[test]
    fn uniform_state_is_stationary() {
        let mut p = EulerPatch::new(BoxRegion::new((0, 0), (8, 8)), 0.1);
        p.init(|_, _| EulerState {
            rho: 1.0,
            u: 0.0,
            v: 0.0,
            p: 1.0,
        });
        let before = p.patch.data.clone();
        p.step(0.01);
        // Interior must be untouched (ghost cells legitimately change as
        // they get filled).
        for c in 0..NCOMP {
            for i in 0..8 {
                for j in 0..8 {
                    let k = p.patch.idx(c, i, j);
                    assert!((p.patch.data[k] - before[k]).abs() < 1e-13);
                }
            }
        }
    }

    #[test]
    fn sod_develops_correct_wave_ordering() {
        let n = 200;
        let mut p = sod_tube(n);
        run_to(&mut p, 0.2);
        // Density profile at j = 2: monotone decreasing overall; plateau
        // values bracketed by the exact solution's intermediate states.
        let rho: Vec<f64> = (0..n).map(|i| p.patch.get(RHO, i, 2)).collect();
        assert!(rho[10] > 0.95, "left state disturbed: {}", rho[10]);
        assert!(rho[n - 10] < 0.15, "right state disturbed: {}", rho[n - 10]);
        // Exact contact density left/right: 0.426 / 0.266; first-order LLF
        // smears but the mid-tube value must land between the states.
        let mid = rho[(0.6 * n as f64) as usize];
        assert!(mid > 0.2 && mid < 0.5, "mid-tube density {mid}");
        // The shock has passed x ~ 0.85 by t = 0.2? No: shock speed
        // ~ 1.75 => x ~ 0.85. Just ahead of it density is still 0.125.
        let ahead = rho[(0.95 * n as f64) as usize];
        assert!((ahead - 0.125).abs() < 0.02, "{ahead}");
    }

    #[test]
    fn sod_conserves_mass_and_energy_with_walls_far() {
        // Up to t=0.15 no wave reaches the boundary, so totals are exact.
        let mut p = sod_tube(128);
        let m0 = p.total(RHO);
        let e0 = p.total(EN);
        run_to(&mut p, 0.1);
        assert!((p.total(RHO) - m0).abs() < 1e-10 * m0);
        assert!((p.total(EN) - e0).abs() < 1e-10 * e0);
    }

    #[test]
    fn density_stays_positive() {
        let mut p = sod_tube(100);
        run_to(&mut p, 0.2);
        assert!(p.min_density() > 0.0);
    }

    #[test]
    fn gradient_peaks_at_discontinuity() {
        let p = sod_tube(64);
        let g_mid = p.density_gradient(32, 2);
        let g_far = p.density_gradient(10, 2);
        assert!(g_mid > 10.0 * g_far.max(1e-12));
    }
}
