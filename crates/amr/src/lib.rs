//! `amr` — the SAMRAI stand-in (§4.10.5) with a CleverLeaf-style solver.
//!
//! SAMRAI provides structured adaptive mesh refinement; the iCoE port
//! replaced its Fortran numerical kernels with RAJA/Umpire-based C++ that
//! runs on either CPUs or GPUs, keeping data device-resident and pooling
//! every allocation. CleverLeaf (the assessment mini-app of Table 5)
//! solves the compressible Euler equations on that hierarchy.
//!
//! * [`grid`] — boxes, patches with ghost cells, refine/coarsen transfer
//!   operators;
//! * [`hierarchy`] — a two-level AMR hierarchy with gradient tagging and
//!   subcycled time stepping;
//! * [`euler`] — the ideal-gas Euler solver (Rusanov fluxes, CFL control);
//! * [`cost`] — Table 5's CPU-vs-GPU node costs, including the
//!   Umpire-pool allocation amortisation.

pub mod cost;
pub mod euler;
pub mod grid;
pub mod hierarchy;

pub use euler::{EulerPatch, EulerState};
pub use grid::{BoxRegion, Patch};
pub use hierarchy::Hierarchy;
