//! A two-level AMR hierarchy with gradient tagging, tag clustering into
//! multiple fine patches, and subcycling.

use crate::euler::EulerPatch;
use crate::grid::{prolong_constant, restrict_average, BoxRegion};

/// A coarse level covering the whole domain plus a fine level (refinement
/// ratio 2) of disjoint patches covering the tagged regions.
pub struct Hierarchy {
    pub coarse: EulerPatch,
    pub fine: Vec<EulerPatch>,
    pub ratio: usize,
    /// Gradient threshold for tagging.
    pub tag_threshold: f64,
    regrids: u64,
}

/// Group tagged cells into connected clusters (8-connectivity) and return
/// each cluster's bounding box.
fn cluster_boxes(tags: &[bool], nx: usize, ny: usize) -> Vec<BoxRegion> {
    let mut seen = vec![false; nx * ny];
    let mut out = Vec::new();
    for start in 0..nx * ny {
        if !tags[start] || seen[start] {
            continue;
        }
        // BFS flood fill.
        let mut stack = vec![start];
        seen[start] = true;
        let mut min = (nx, ny);
        let mut max = (0usize, 0usize);
        while let Some(c) = stack.pop() {
            let (i, j) = (c / ny, c % ny);
            min = (min.0.min(i), min.1.min(j));
            max = (max.0.max(i + 1), max.1.max(j + 1));
            for di in -1i32..=1 {
                for dj in -1i32..=1 {
                    let (ni2, nj2) = (i as i32 + di, j as i32 + dj);
                    if ni2 < 0 || nj2 < 0 || ni2 >= nx as i32 || nj2 >= ny as i32 {
                        continue;
                    }
                    let n2 = ni2 as usize * ny + nj2 as usize;
                    if tags[n2] && !seen[n2] {
                        seen[n2] = true;
                        stack.push(n2);
                    }
                }
            }
        }
        out.push(BoxRegion::new(min, max));
    }
    out
}

fn boxes_overlap(a: &BoxRegion, b: &BoxRegion) -> bool {
    a.lo.0 < b.hi.0 && b.lo.0 < a.hi.0 && a.lo.1 < b.hi.1 && b.lo.1 < a.hi.1
}

fn merge_boxes(mut boxes: Vec<BoxRegion>) -> Vec<BoxRegion> {
    // Merge any overlapping pair until a fixpoint: the result is disjoint.
    loop {
        let mut merged = false;
        'outer: for i in 0..boxes.len() {
            for j in (i + 1)..boxes.len() {
                if boxes_overlap(&boxes[i], &boxes[j]) {
                    let b = boxes.remove(j);
                    let a = boxes[i];
                    boxes[i] = BoxRegion::new(
                        (a.lo.0.min(b.lo.0), a.lo.1.min(b.lo.1)),
                        (a.hi.0.max(b.hi.0), a.hi.1.max(b.hi.1)),
                    );
                    merged = true;
                    break 'outer;
                }
            }
        }
        if !merged {
            return boxes;
        }
    }
}

impl Hierarchy {
    pub fn new(n: usize, h: f64, tag_threshold: f64) -> Hierarchy {
        Hierarchy {
            coarse: EulerPatch::new(BoxRegion::new((0, 0), (n, n)), h),
            fine: Vec::new(),
            ratio: 2,
            tag_threshold,
            regrids: 0,
        }
    }

    pub fn regrids(&self) -> u64 {
        self.regrids
    }

    /// Tag cells by density gradient, cluster the tags, and rebuild the
    /// fine level as one grown patch per (merged) cluster.
    pub fn regrid(&mut self) {
        let region = self.coarse.patch.region;
        let (nx, ny) = (region.nx(), region.ny());
        let mut tags = vec![false; nx * ny];
        let mut any = false;
        for i in 0..nx {
            for j in 0..ny {
                if self.coarse.density_gradient(i, j) > self.tag_threshold {
                    tags[i * ny + j] = true;
                    any = true;
                }
            }
        }
        if !any {
            self.fine.clear();
            return;
        }
        let boxes = cluster_boxes(&tags, nx, ny)
            .into_iter()
            .map(|b| b.grown(2, (nx, ny)))
            .collect::<Vec<_>>();
        let boxes = merge_boxes(boxes);
        self.fine = boxes
            .into_iter()
            .map(|b| {
                let mut fine =
                    EulerPatch::new(b.refined(self.ratio), self.coarse.h / self.ratio as f64);
                prolong_constant(&self.coarse.patch, &mut fine.patch, self.ratio);
                fine
            })
            .collect();
        self.regrids += 1;
    }

    /// Fraction of the domain covered by the fine level.
    pub fn fine_coverage(&self) -> f64 {
        let fine_cells: usize = self.fine.iter().map(|f| f.patch.region.cells()).sum();
        fine_cells as f64 / (self.coarse.patch.region.cells() * self.ratio * self.ratio) as f64
    }

    /// Number of fine patches.
    pub fn num_patches(&self) -> usize {
        self.fine.len()
    }

    /// Advance the hierarchy by one coarse step with `ratio` subcycled
    /// fine steps, then restrict the fine solution onto the coarse level.
    pub fn step(&mut self) {
        let mut dt = self.coarse.stable_dt();
        for f in &self.fine {
            dt = dt.min(f.stable_dt() * self.ratio as f64);
        }
        self.coarse.step(dt);
        for fine in self.fine.iter_mut() {
            let fdt = dt / self.ratio as f64;
            for _ in 0..self.ratio {
                fine.step(fdt);
            }
            restrict_average(&fine.patch, &mut self.coarse.patch, self.ratio);
        }
    }

    /// Run `steps` coarse steps, regridding every `regrid_every`.
    pub fn run(&mut self, steps: usize, regrid_every: usize) {
        for s in 0..steps {
            if s % regrid_every.max(1) == 0 {
                self.regrid();
            }
            self.step();
        }
    }

    /// Total of one conserved component over the coarse level.
    pub fn total(&self, c: usize) -> f64 {
        self.coarse.total(c)
    }

    /// Number of cell-updates a full step performs (coarse + subcycled
    /// fine) — the work metric for the Table 5 cost model.
    pub fn cell_updates_per_step(&self) -> usize {
        let coarse = self.coarse.patch.region.cells();
        let fine: usize = self
            .fine
            .iter()
            .map(|f| f.patch.region.cells() * self.ratio)
            .sum();
        coarse + fine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euler::{sod, EulerState, NCOMP, RHO};

    fn blast(n: usize) -> Hierarchy {
        let mut h = Hierarchy::new(n, 1.0 / n as f64, 2.0);
        h.coarse.init(|x, y| {
            let r2 = (x - 0.5) * (x - 0.5) + (y - 0.5) * (y - 0.5);
            if r2 < 0.01 {
                EulerState {
                    rho: 2.0,
                    u: 0.0,
                    v: 0.0,
                    p: 10.0,
                }
            } else {
                EulerState {
                    rho: 1.0,
                    u: 0.0,
                    v: 0.0,
                    p: 1.0,
                }
            }
        });
        h
    }

    #[test]
    fn regrid_places_fine_level_over_the_shock() {
        let mut h = blast(48);
        h.regrid();
        assert!(!h.fine.is_empty(), "tags found");
        // Some fine patch covers the blast centre (coarse cell 24 -> fine 48).
        assert!(h.fine.iter().any(|f| f.patch.region.contains(48, 48)));
        assert!(h.fine_coverage() < 0.6, "coverage {}", h.fine_coverage());
    }

    #[test]
    fn smooth_flow_produces_no_fine_level() {
        let mut h = Hierarchy::new(32, 1.0 / 32.0, 2.0);
        h.coarse.init(|_, _| EulerState {
            rho: 1.0,
            u: 0.1,
            v: 0.0,
            p: 1.0,
        });
        h.regrid();
        assert!(h.fine.is_empty());
        assert_eq!(h.fine_coverage(), 0.0);
    }

    #[test]
    fn blast_wave_expands_and_coverage_grows() {
        let mut h = blast(48);
        h.regrid();
        let c0 = h.fine_coverage();
        h.run(12, 3);
        let c1 = h.fine_coverage();
        assert!(c1 > c0, "coverage {c0} -> {c1}");
    }

    #[test]
    fn hierarchy_keeps_density_positive() {
        let mut h = blast(40);
        h.run(15, 4);
        assert!(h.coarse.min_density() > 0.0);
        for f in &h.fine {
            assert!(f.min_density() > 0.0);
        }
    }

    #[test]
    fn sod_on_hierarchy_tracks_single_level_solution() {
        // A fine level over the discontinuity must not corrupt the coarse
        // solution: compare against a coarse-only run.
        let n = 64;
        let mut amr = Hierarchy::new(n, 1.0 / n as f64, 1.5);
        amr.coarse.init(sod);
        let mut plain = Hierarchy::new(n, 1.0 / n as f64, f64::INFINITY);
        plain.coarse.init(sod);
        amr.run(10, 2);
        assert!(!amr.fine.is_empty(), "sod should tag the membrane");
        plain.run(10, 2);
        assert!(plain.fine.is_empty());
        let mut max_dev = 0.0f64;
        for i in 0..n {
            let a = amr.coarse.patch.get(RHO, i, n / 2);
            let b = plain.coarse.patch.get(RHO, i, n / 2);
            max_dev = max_dev.max((a - b).abs());
        }
        // Different effective resolution near the shock, but same waves.
        assert!(max_dev < 0.12, "AMR diverged from single level: {max_dev}");
    }

    #[test]
    fn cell_updates_count_fine_subcycles() {
        let mut h = blast(48);
        assert_eq!(h.cell_updates_per_step(), 48 * 48);
        h.regrid();
        assert!(h.cell_updates_per_step() > 48 * 48);
        let fine_cells: usize = h.fine.iter().map(|f| f.patch.region.cells()).sum();
        assert_eq!(h.cell_updates_per_step(), 48 * 48 + 2 * fine_cells);
        let _ = NCOMP;
    }
}

#[cfg(test)]
mod multipatch_tests {
    use super::*;
    use crate::euler::EulerState;

    /// Two well-separated blasts must get two separate fine patches.
    #[test]
    fn separated_features_get_separate_patches() {
        let n = 64;
        let mut h = Hierarchy::new(n, 1.0 / n as f64, 2.0);
        h.coarse.init(|x, y| {
            let b1 = (x - 0.2) * (x - 0.2) + (y - 0.2) * (y - 0.2) < 0.004;
            let b2 = (x - 0.8) * (x - 0.8) + (y - 0.8) * (y - 0.8) < 0.004;
            if b1 || b2 {
                EulerState {
                    rho: 2.0,
                    u: 0.0,
                    v: 0.0,
                    p: 10.0,
                }
            } else {
                EulerState {
                    rho: 1.0,
                    u: 0.0,
                    v: 0.0,
                    p: 1.0,
                }
            }
        });
        h.regrid();
        assert_eq!(h.num_patches(), 2, "expected two disjoint patches");
        // Patches are disjoint in coarse index space.
        let a = h.fine[0].patch.region;
        let b = h.fine[1].patch.region;
        let disjoint = a.hi.0 <= b.lo.0 || b.hi.0 <= a.lo.0 || a.hi.1 <= b.lo.1 || b.hi.1 <= a.lo.1;
        assert!(disjoint, "{a:?} overlaps {b:?}");
        // Coverage is far below one big bounding box of both blasts.
        assert!(h.fine_coverage() < 0.3, "{}", h.fine_coverage());
    }

    /// Adjacent features merge into one patch rather than overlapping.
    #[test]
    fn overlapping_clusters_merge() {
        let n = 48;
        let mut h = Hierarchy::new(n, 1.0 / n as f64, 2.0);
        h.coarse.init(|x, y| {
            let b1 = (x - 0.45) * (x - 0.45) + (y - 0.5) * (y - 0.5) < 0.004;
            let b2 = (x - 0.55) * (x - 0.55) + (y - 0.5) * (y - 0.5) < 0.004;
            if b1 || b2 {
                EulerState {
                    rho: 2.0,
                    u: 0.0,
                    v: 0.0,
                    p: 10.0,
                }
            } else {
                EulerState {
                    rho: 1.0,
                    u: 0.0,
                    v: 0.0,
                    p: 1.0,
                }
            }
        });
        h.regrid();
        assert_eq!(h.num_patches(), 1, "close blasts must merge");
    }

    /// Physics still holds with multiple patches advancing.
    #[test]
    fn two_patch_run_conserves_and_stays_positive() {
        let n = 64;
        let mut h = Hierarchy::new(n, 1.0 / n as f64, 2.0);
        h.coarse.init(|x, y| {
            let b1 = (x - 0.25) * (x - 0.25) + (y - 0.25) * (y - 0.25) < 0.004;
            let b2 = (x - 0.75) * (x - 0.75) + (y - 0.75) * (y - 0.75) < 0.004;
            if b1 || b2 {
                EulerState {
                    rho: 2.0,
                    u: 0.0,
                    v: 0.0,
                    p: 10.0,
                }
            } else {
                EulerState {
                    rho: 1.0,
                    u: 0.0,
                    v: 0.0,
                    p: 1.0,
                }
            }
        });
        let m0 = h.total(crate::euler::RHO);
        h.run(10, 3);
        assert!(h.num_patches() >= 2);
        assert!((h.total(crate::euler::RHO) - m0).abs() < 1e-6 * m0);
        assert!(h.coarse.min_density() > 0.0);
    }
}
