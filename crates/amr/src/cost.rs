//! Table 5's CleverLeaf cost model.
//!
//! The paper's numbers: full node 2x P9 (44 cores, MPI) 127.5 s vs 4x V100
//! 17.86 s => ~7x; single-socket P9 vs single V100: 74 s vs 5 s => ~15x.
//! The GPU path uses the RAJA CUDA backend with device-resident data and
//! Umpire pools; the knobs below reproduce exactly those mechanisms.

use hetsim::{KernelProfile, Machine, Target};
use portal::{Pool, Space};

/// How the CleverLeaf run is mapped onto the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeMapping {
    /// All CPU sockets, MPI-style (11 ranks/socket in the paper).
    FullNodeCpu,
    /// All GPUs via the RAJA CUDA backend.
    FullNodeGpu,
    /// One socket only.
    SingleSocketCpu,
    /// One GPU only.
    SingleGpu,
}

/// Per-cell-update work for the hydro sweep (flux + EOS + update).
fn hydro_profile(cell_updates: f64, on_gpu: bool) -> KernelProfile {
    let k = KernelProfile::new("cleverleaf-hydro")
        .flops(250.0 * cell_updates)
        .bytes_read(4.0 * 5.0 * 8.0 * cell_updates)
        .bytes_written(4.0 * 8.0 * cell_updates)
        .parallelism(cell_updates);
    if on_gpu {
        // RAJA CUDA backend: portable, so it pays the abstraction factor,
        // folded into compute efficiency here.
        k.compute_eff(0.7)
    } else {
        // Branchy EOS / flux logic defeats the P9 vector units; MPI-rank
        // halo packing adds overhead. Measured CleverLeaf CPU efficiency
        // is well under half of peak.
        k.compute_eff(0.3)
    }
}

/// Serial host-side regrid cost (tagging + box generation + schedule
/// construction), amortised over the regrid interval. This work does not
/// scale with GPUs — the Amdahl term that separates Table 5's full-node
/// column from its single-device column.
fn regrid_cost(machine: &Machine, cells: f64) -> f64 {
    let sim = hetsim::Sim::new(machine.clone());
    let k = KernelProfile::new("samrai-regrid")
        .flops(20.0 * cells)
        .bytes_read(32.0 * cells)
        .parallelism(1.0)
        .launch_class(hetsim::LaunchClass::HostSerial);
    sim.cost(Target::cpu(1), &k) / 10.0 // regrid every ~10 steps
}

/// Simulated seconds for `steps` timesteps of `cell_updates` cells each,
/// plus per-step temporary allocations (pooled or raw).
pub fn run_cost(
    machine: &Machine,
    mapping: NodeMapping,
    cell_updates: f64,
    steps: usize,
    pooled_allocations: bool,
) -> f64 {
    let sim = hetsim::Sim::new(machine.clone());
    let (target, per_unit) = match mapping {
        NodeMapping::FullNodeCpu => (Target::cpu_all(), 1.0),
        NodeMapping::SingleSocketCpu => (Target::cpu(machine.node.cpu.cores_per_socket), 1.0),
        NodeMapping::FullNodeGpu => (Target::gpu(0), machine.node.gpu_count() as f64),
        NodeMapping::SingleGpu => (Target::gpu(0), 1.0),
    };
    let on_gpu = matches!(mapping, NodeMapping::FullNodeGpu | NodeMapping::SingleGpu);
    let profile = hydro_profile(cell_updates / per_unit, on_gpu);
    let mut step_compute = sim.cost(target, &profile);
    match mapping {
        // AMR patches never balance perfectly across 4 GPUs, and the
        // host-serial regrid does not scale with device count.
        NodeMapping::FullNodeGpu => {
            step_compute = step_compute * 1.5 + regrid_cost(machine, cell_updates);
        }
        NodeMapping::FullNodeCpu => {
            step_compute += regrid_cost(machine, cell_updates);
        }
        // The single-device column is the pure hydro-sweep comparison.
        NodeMapping::SingleSocketCpu | NodeMapping::SingleGpu => {}
    }

    // Per-step temporaries: ~12 device arrays allocated and freed.
    let alloc_cost_per_step = if on_gpu {
        if pooled_allocations {
            let pool = Pool::new(Space::Device);
            let mut total = 0.0;
            // Warm the pool once, then steady-state hits.
            for _ in 0..2 {
                let mut blocks = Vec::new();
                for a in 0..12u64 {
                    let (b, c) = pool.alloc(1 << (14 + a % 3));
                    blocks.push(b);
                    total = c; // steady-state cost of the last round
                }
                for b in blocks {
                    pool.free(b);
                }
            }
            12.0 * total
        } else {
            12.0 * Space::Device.raw_alloc_cost()
        }
    } else {
        12.0 * Space::Host.raw_alloc_cost()
    };

    steps as f64 * (step_compute + alloc_cost_per_step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::machines;

    const CELLS: f64 = 8.0e6; // a CleverLeaf production level
    const STEPS: usize = 100;

    #[test]
    fn full_node_gpu_speedup_matches_table5_shape() {
        let m = machines::sierra_node();
        let cpu = run_cost(&m, NodeMapping::FullNodeCpu, CELLS, STEPS, true);
        let gpu = run_cost(&m, NodeMapping::FullNodeGpu, CELLS, STEPS, true);
        let speedup = cpu / gpu;
        // Paper: ~7x full node.
        assert!(
            speedup > 4.0 && speedup < 12.0,
            "full-node speedup {speedup}"
        );
    }

    #[test]
    fn single_socket_vs_single_gpu_is_larger() {
        let m = machines::sierra_node();
        let cpu = run_cost(&m, NodeMapping::SingleSocketCpu, CELLS, STEPS, true);
        let gpu = run_cost(&m, NodeMapping::SingleGpu, CELLS, STEPS, true);
        let s1 = cpu / gpu;
        let full_cpu = run_cost(&m, NodeMapping::FullNodeCpu, CELLS, STEPS, true);
        let full_gpu = run_cost(&m, NodeMapping::FullNodeGpu, CELLS, STEPS, true);
        let s_full = full_cpu / full_gpu;
        // Paper: 15x single pair vs 7x full node.
        assert!(s1 > s_full, "single {s1} vs full {s_full}");
        assert!(s1 > 8.0 && s1 < 22.0, "single-pair speedup {s1}");
    }

    #[test]
    fn pooling_beats_raw_allocation_on_gpu() {
        let m = machines::sierra_node();
        let pooled = run_cost(&m, NodeMapping::SingleGpu, 1e5, 200, true);
        let raw = run_cost(&m, NodeMapping::SingleGpu, 1e5, 200, false);
        assert!(pooled < raw, "{pooled} vs {raw}");
    }
}
