//! `ode` — the SUNDIALS stand-in (§4.10.2).
//!
//! SUNDIALS "already expresses its vector and algebraic solver operations
//! generically by abstracting the specific operations behind methods in
//! backends. The team's approach leaves high-level control to the time
//! integrator and nonlinear solver calls on the CPU, and supplies vector
//! implementations that operate on data in GPU memory."
//!
//! That architecture is reproduced exactly:
//!
//! * [`nvector::NVector`] — the backend-generic vector interface; the
//!   integrator only ever talks to it;
//! * [`nvector::HostVec`] — plain host memory;
//! * [`nvector::CountingVec`] — a decorated vector that counts every
//!   operation and its bytes, so a `hetsim` device can be charged for the
//!   solve without the integrator knowing (the "data stays on the GPU"
//!   integration contract of §4.10.4);
//! * [`bdf::BdfIntegrator`] — a CVODE-style fixed-leading-coefficient BDF
//!   (orders 1-5) with an inexact Newton iteration and a Jacobian-free
//!   GMRES inner solver, preconditioner hook included (that hook is where
//!   *hypre* plugs in).

pub mod adaptive;
pub mod bdf;
pub mod newton;
pub mod nvector;

pub use adaptive::{AdaptiveBdf, AdaptiveStats};
pub use bdf::{BdfIntegrator, BdfOptions, StepStats};
pub use newton::{matfree_gmres, NewtonOptions};
pub use nvector::{CountingVec, HostVec, NVector, OpCounts};
