//! Inexact Newton with a Jacobian-free GMRES inner solve, generic over
//! [`NVector`].

use crate::nvector::NVector;

/// Newton iteration options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    pub max_iters: usize,
    pub tol: f64,
    /// GMRES restart length.
    pub krylov_dim: usize,
    /// Relative tolerance for the linear solve (inexact Newton).
    pub lin_tol: f64,
    pub max_lin_iters: usize,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iters: 10,
            tol: 1e-9,
            krylov_dim: 30,
            lin_tol: 1e-4,
            max_lin_iters: 200,
        }
    }
}

/// Matrix-free GMRES: solve `A x = b` where `apply_a(v, out)` computes
/// `out = A v`. `x` holds the initial guess. Optional preconditioner
/// `precond(r, z)` computes `z ~= M^-1 r` (right preconditioning is
/// approximated by left application here, which the paper's solves also
/// use). Returns (iterations, relative residual).
pub fn matfree_gmres<V, A, P>(
    mut apply_a: A,
    mut precond: P,
    b: &V,
    x: &mut V,
    restart: usize,
    tol: f64,
    max_iters: usize,
) -> (usize, f64)
where
    V: NVector,
    A: FnMut(&V, &mut V),
    P: FnMut(&V, &mut V),
{
    let bnorm = b.dot(b).sqrt().max(1e-300);
    let m = restart.max(1);
    let mut total = 0usize;
    let mut scratch = x.clone();
    loop {
        // r = M^-1 (b - A x)
        apply_a(x, &mut scratch);
        let mut r = b.clone();
        r.linear_sum(-1.0, &scratch, 1.0);
        let true_rel = r.dot(&r).sqrt() / bnorm;
        if true_rel < tol || total >= max_iters {
            return (total, true_rel);
        }
        let mut z = r.clone();
        precond(&r, &mut z);
        let beta = z.dot(&z).sqrt();
        if beta < 1e-300 {
            return (total, true_rel);
        }
        let mut v: Vec<V> = Vec::with_capacity(m + 1);
        let mut v0 = z;
        v0.scale(1.0 / beta);
        v.push(v0);
        let mut h = vec![vec![0.0f64; m]; m + 1];
        let mut cs = vec![0.0f64; m];
        let mut sn = vec![0.0f64; m];
        let mut g = vec![0.0f64; m + 1];
        g[0] = beta;
        let mut k_used = 0;
        for k in 0..m {
            if total >= max_iters {
                break;
            }
            total += 1;
            k_used = k + 1;
            apply_a(&v[k], &mut scratch);
            let mut w = scratch.clone();
            precond(&scratch, &mut w);
            for j in 0..=k {
                h[j][k] = w.dot(&v[j]);
                w.linear_sum(-h[j][k], &v[j], 1.0);
            }
            h[k + 1][k] = w.dot(&w).sqrt();
            if h[k + 1][k] > 1e-300 {
                w.scale(1.0 / h[k + 1][k]);
            }
            v.push(w);
            for j in 0..k {
                let t = cs[j] * h[j][k] + sn[j] * h[j + 1][k];
                h[j + 1][k] = -sn[j] * h[j][k] + cs[j] * h[j + 1][k];
                h[j][k] = t;
            }
            let denom = (h[k][k] * h[k][k] + h[k + 1][k] * h[k + 1][k])
                .sqrt()
                .max(1e-300);
            cs[k] = h[k][k] / denom;
            sn[k] = h[k + 1][k] / denom;
            h[k][k] = denom;
            h[k + 1][k] = 0.0;
            g[k + 1] = -sn[k] * g[k];
            g[k] *= cs[k];
            if g[k + 1].abs() / bnorm < tol {
                break;
            }
        }
        let k = k_used;
        let mut y = vec![0.0f64; k];
        for i in (0..k).rev() {
            let mut s = g[i];
            for j in (i + 1)..k {
                s -= h[i][j] * y[j];
            }
            y[i] = s / h[i][i].max(1e-300);
        }
        for (j, yj) in y.iter().enumerate() {
            x.linear_sum(*yj, &v[j], 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nvector::HostVec;

    #[test]
    fn solves_diagonal_system() {
        let n = 16;
        let d: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        let dd = d.clone();
        let apply = move |v: &HostVec, out: &mut HostVec| {
            for i in 0..n {
                out.0[i] = dd[i] * v.0[i];
            }
        };
        let b = HostVec::from_vec(vec![1.0; n]);
        let mut x = HostVec::zeros(n);
        let (_, rel) = matfree_gmres(
            apply,
            |r: &HostVec, z: &mut HostVec| z.copy_from(r),
            &b,
            &mut x,
            20,
            1e-12,
            500,
        );
        assert!(rel < 1e-10);
        for i in 0..n {
            assert!((x.0[i] - 1.0 / d[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn preconditioner_cuts_iterations() {
        let n = 64;
        let d: Vec<f64> = (1..=n).map(|i| (i * i) as f64).collect();
        let d1 = d.clone();
        let d2 = d.clone();
        let b = HostVec::from_vec(vec![1.0; n]);
        let mut x1 = HostVec::zeros(n);
        let (it_plain, _) = matfree_gmres(
            move |v: &HostVec, out: &mut HostVec| {
                for i in 0..n {
                    out.0[i] = d1[i] * v.0[i];
                }
            },
            |r: &HostVec, z: &mut HostVec| z.copy_from(r),
            &b,
            &mut x1,
            30,
            1e-10,
            2000,
        );
        let mut x2 = HostVec::zeros(n);
        let (it_pre, rel) = matfree_gmres(
            move |v: &HostVec, out: &mut HostVec| {
                for i in 0..n {
                    out.0[i] = d2[i] * v.0[i];
                }
            },
            move |r: &HostVec, z: &mut HostVec| {
                for i in 0..n {
                    z.0[i] = r.0[i] / (i as f64 + 1.0).powi(2);
                }
            },
            &b,
            &mut x2,
            30,
            1e-10,
            2000,
        );
        assert!(rel < 1e-10);
        assert!(it_pre < it_plain, "{it_pre} vs {it_plain}");
    }

    #[test]
    fn converged_guess_takes_zero_iterations() {
        let n = 4;
        let b = HostVec::from_vec(vec![2.0; n]);
        let mut x = HostVec::from_vec(vec![2.0; n]);
        let (iters, rel) = matfree_gmres(
            |v: &HostVec, out: &mut HostVec| out.copy_from(v),
            |r: &HostVec, z: &mut HostVec| z.copy_from(r),
            &b,
            &mut x,
            10,
            1e-12,
            100,
        );
        assert_eq!(iters, 0);
        assert!(rel < 1e-12);
    }
}
