//! CVODE-style fixed-step BDF integrator (orders 1-5) with inexact Newton
//! and Jacobian-free GMRES.
//!
//! Solves `y' = f(t, y)`. Each step solves the nonlinear system
//! `G(y) = y - gamma * f(t_n, y) - psi = 0` where `gamma = h * beta_k` and
//! `psi` collects history terms; the Newton linear systems use the
//! finite-difference Jacobian action `J v ~ (G(y + e v) - G(y)) / e`.

use crate::newton::{matfree_gmres, NewtonOptions};
use crate::nvector::NVector;

/// BDF coefficients: `y_n = sum_j a[j] * y_{n-j} + h * beta * f(t_n, y_n)`.
fn bdf_coeffs(order: usize) -> (Vec<f64>, f64) {
    match order {
        1 => (vec![1.0], 1.0),
        2 => (vec![4.0 / 3.0, -1.0 / 3.0], 2.0 / 3.0),
        3 => (vec![18.0 / 11.0, -9.0 / 11.0, 2.0 / 11.0], 6.0 / 11.0),
        4 => (
            vec![48.0 / 25.0, -36.0 / 25.0, 16.0 / 25.0, -3.0 / 25.0],
            12.0 / 25.0,
        ),
        5 => (
            vec![
                300.0 / 137.0,
                -300.0 / 137.0,
                200.0 / 137.0,
                -75.0 / 137.0,
                12.0 / 137.0,
            ],
            60.0 / 137.0,
        ),
        _ => panic!("BDF order must be 1..=5, got {order}"),
    }
}

/// Integrator options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BdfOptions {
    pub order: usize,
    pub newton: NewtonOptions,
}

impl Default for BdfOptions {
    fn default() -> Self {
        BdfOptions {
            order: 2,
            newton: NewtonOptions::default(),
        }
    }
}

/// Work counters accumulated over an integration (these are what a
/// benchmark charges to a device).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepStats {
    pub steps: u64,
    pub rhs_evals: u64,
    pub newton_iters: u64,
    pub krylov_iters: u64,
    pub newton_failures: u64,
}

/// The integrator. Generic over the vector backend `V` and borrowing the
/// user's right-hand side `f(t, y, ydot)` plus an optional preconditioner.
pub struct BdfIntegrator<V: NVector> {
    pub opts: BdfOptions,
    /// Solution history, newest first (`history[0]` = y_n).
    history: Vec<V>,
    t: f64,
    /// Step size the history was built with (fixed-coefficient BDF needs
    /// uniform spacing; a change truncates the history to order 1).
    last_h: Option<f64>,
    pub stats: StepStats,
}

impl<V: NVector> BdfIntegrator<V> {
    pub fn new(y0: V, t0: f64, opts: BdfOptions) -> Self {
        BdfIntegrator {
            opts,
            history: vec![y0],
            t: t0,
            last_h: None,
            stats: StepStats::default(),
        }
    }

    pub fn time(&self) -> f64 {
        self.t
    }

    pub fn state(&self) -> &V {
        &self.history[0]
    }

    /// Advance one step of size `h` using RHS `f` and preconditioner
    /// `precond` (pass a copy closure for none). Returns false if Newton
    /// failed to converge.
    pub fn step<F, P>(&mut self, h: f64, mut f: F, mut precond: P) -> bool
    where
        F: FnMut(f64, &[f64], &mut [f64]),
        P: FnMut(&V, &mut V),
    {
        // Fixed-coefficient BDF requires uniformly spaced history; on a
        // step-size change, drop to order 1 and ramp back up.
        if let Some(prev) = self.last_h {
            if (h - prev).abs() > 1e-12 * prev.abs().max(1e-300) {
                self.history.truncate(1);
            }
        }
        self.last_h = Some(h);
        // Ramp up the order while history is short (CVODE does the same).
        let order = self.opts.order.min(self.history.len());
        let (a, beta) = bdf_coeffs(order);
        let gamma = h * beta;
        let t_new = self.t + h;

        // psi = sum_j a[j] * y_{n-j}
        let mut psi = self.history[0].clone();
        psi.scale(a[0]);
        for (j, aj) in a.iter().enumerate().skip(1) {
            psi.linear_sum(*aj, &self.history[j], 1.0);
        }

        // Predictor: extrapolate from history (use previous state).
        let mut y = self.history[0].clone();
        let mut g = y.clone();
        let mut rhs_buf = y.clone();

        // Residual G(y) = y - gamma f(t,y) - psi.
        let mut eval_g = |y: &V, out: &mut V, rhs_buf: &mut V, stats: &mut StepStats| {
            rhs_buf.fill(0.0);
            f(t_new, y.as_slice(), rhs_buf.as_mut_slice());
            stats.rhs_evals += 1;
            out.copy_from(y);
            out.linear_sum(-gamma, rhs_buf, 1.0);
            out.linear_sum(-1.0, &psi, 1.0);
        };

        let nopts = self.opts.newton;
        let mut converged = false;
        for _ in 0..nopts.max_iters {
            eval_g(&y, &mut g, &mut rhs_buf, &mut self.stats);
            let gnorm = g.dot(&g).sqrt() / (y.len() as f64).sqrt();
            if gnorm < nopts.tol {
                converged = true;
                break;
            }
            self.stats.newton_iters += 1;
            // Solve J dy = -g with J v ~ (G(y + e v) - G(y)) / e.
            let mut neg_g = g.clone();
            neg_g.scale(-1.0);
            let mut dy = y.clone();
            dy.fill(0.0);
            let base_g = g.clone();
            let y_base = y.clone();
            let mut pert = y.clone();
            let mut gp = g.clone();
            let mut rhs2 = rhs_buf.clone();
            let mut stats_local = StepStats::default();
            let apply_j = |v: &V, out: &mut V| {
                let vnorm = v.dot(v).sqrt();
                if vnorm < 1e-300 {
                    out.fill(0.0);
                    return;
                }
                let eps = 1e-7 * (1.0 + y_base.max_norm()) / vnorm;
                pert.copy_from(&y_base);
                pert.linear_sum(eps, v, 1.0);
                eval_g(&pert, &mut gp, &mut rhs2, &mut stats_local);
                out.copy_from(&gp);
                out.linear_sum(-1.0, &base_g, 1.0);
                out.scale(1.0 / eps);
            };
            let (lin_iters, _rel) = matfree_gmres(
                apply_j,
                &mut precond,
                &neg_g,
                &mut dy,
                nopts.krylov_dim,
                nopts.lin_tol,
                nopts.max_lin_iters,
            );
            self.stats.krylov_iters += lin_iters as u64;
            self.stats.rhs_evals += stats_local.rhs_evals;
            y.linear_sum(1.0, &dy, 1.0);
        }
        if !converged {
            // Final check after max iterations.
            eval_g(&y, &mut g, &mut rhs_buf, &mut self.stats);
            let gnorm = g.dot(&g).sqrt() / (y.len() as f64).sqrt();
            converged = gnorm < nopts.tol * 10.0;
        }
        if !converged {
            self.stats.newton_failures += 1;
            return false;
        }

        // Accept: push history.
        self.history.insert(0, y);
        let keep = self.opts.order.max(1) + 1;
        self.history.truncate(keep);
        self.t = t_new;
        self.stats.steps += 1;
        true
    }

    /// Integrate to `t_end` with fixed step `h`.
    pub fn integrate_to<F, P>(&mut self, t_end: f64, h: f64, mut f: F, mut precond: P) -> bool
    where
        F: FnMut(f64, &[f64], &mut [f64]),
        P: FnMut(&V, &mut V),
    {
        while self.t < t_end - 1e-12 {
            let step = h.min(t_end - self.t);
            if !self.step(step, &mut f, &mut precond) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nvector::HostVec;

    fn ident_precond(r: &HostVec, z: &mut HostVec) {
        z.copy_from(r);
    }

    #[test]
    fn decay_matches_exponential() {
        // y' = -y, y(0) = 1.
        let mut bdf = BdfIntegrator::new(
            HostVec::from_vec(vec![1.0]),
            0.0,
            BdfOptions {
                order: 2,
                ..Default::default()
            },
        );
        let ok = bdf.integrate_to(1.0, 1e-3, |_t, y, dy| dy[0] = -y[0], ident_precond);
        assert!(ok);
        let err = (bdf.state().0[0] - (-1.0f64).exp()).abs();
        assert!(err < 1e-5, "{err}");
    }

    #[test]
    fn bdf2_is_second_order() {
        let run = |h: f64| {
            let mut bdf = BdfIntegrator::new(
                HostVec::from_vec(vec![1.0]),
                0.0,
                BdfOptions {
                    order: 2,
                    newton: NewtonOptions {
                        tol: 1e-13,
                        lin_tol: 1e-10,
                        ..Default::default()
                    },
                },
            );
            bdf.integrate_to(1.0, h, |_t, y, dy| dy[0] = -y[0], ident_precond);
            (bdf.state().0[0] - (-1.0f64).exp()).abs()
        };
        let e1 = run(0.02);
        let e2 = run(0.01);
        let order = (e1 / e2).log2();
        assert!(order > 1.6 && order < 2.6, "observed order {order}");
    }

    #[test]
    fn stiff_problem_stable_at_large_step() {
        // y' = -1000 (y - cos t); explicit methods need h < 2e-3, BDF does
        // not.
        let mut bdf = BdfIntegrator::new(HostVec::from_vec(vec![0.0]), 0.0, BdfOptions::default());
        let ok = bdf.integrate_to(
            1.0,
            0.05,
            |t, y, dy| dy[0] = -1000.0 * (y[0] - t.cos()),
            ident_precond,
        );
        assert!(ok);
        // Solution tracks cos(t) closely after the fast transient.
        assert!((bdf.state().0[0] - 1.0f64.cos()).abs() < 5e-2);
    }

    #[test]
    fn linear_system_conserves_invariant() {
        // Harmonic oscillator: x' = v, v' = -x. BDF is dissipative, so the
        // energy decays but slowly at small h; verify no blow-up and phase
        // roughly correct.
        let mut bdf = BdfIntegrator::new(
            HostVec::from_vec(vec![1.0, 0.0]),
            0.0,
            BdfOptions {
                order: 3,
                ..Default::default()
            },
        );
        let ok = bdf.integrate_to(
            std::f64::consts::PI,
            1e-3,
            |_t, y, dy| {
                dy[0] = y[1];
                dy[1] = -y[0];
            },
            ident_precond,
        );
        assert!(ok);
        // At t = pi, x ~ -1, v ~ 0.
        assert!((bdf.state().0[0] + 1.0).abs() < 1e-2);
        assert!(bdf.state().0[1].abs() < 1e-2);
    }

    #[test]
    fn stats_are_recorded() {
        let mut bdf = BdfIntegrator::new(HostVec::from_vec(vec![1.0]), 0.0, BdfOptions::default());
        bdf.integrate_to(0.1, 0.01, |_t, y, dy| dy[0] = -y[0], ident_precond);
        assert_eq!(bdf.stats.steps, 10);
        assert!(bdf.stats.rhs_evals > 10);
        assert!(bdf.stats.newton_iters >= 10);
    }

    #[test]
    #[should_panic(expected = "BDF order")]
    fn invalid_order_panics() {
        bdf_coeffs(6);
    }

    #[test]
    fn counting_backend_records_device_work() {
        use crate::nvector::CountingVec;
        let counts = CountingVec::shared_counts();
        let y0 = CountingVec::from_vec(vec![1.0], counts.clone());
        let mut bdf = BdfIntegrator::new(y0, 0.0, BdfOptions::default());
        bdf.integrate_to(
            0.05,
            0.01,
            |_t, y, dy| dy[0] = -y[0],
            |r: &CountingVec, z: &mut CountingVec| z.copy_from(r),
        );
        let c = *counts.borrow();
        assert!(c.streaming_ops > 20);
        assert!(c.bytes_moved > 0.0);
    }
}
