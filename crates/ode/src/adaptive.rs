//! Adaptive step-size control — CVODE's defining behaviour.
//!
//! The controller uses the predictor-corrector difference as a local
//! truncation-error estimate: the predictor extrapolates the history, the
//! corrector is the implicit BDF solution, and their difference is
//! proportional to the LTE. Steps whose weighted error exceeds 1 are
//! rejected and retried; accepted steps grow by the standard
//! `0.9 * err^{-1/(k+1)}` rule.

use crate::bdf::{BdfIntegrator, BdfOptions};
use crate::nvector::NVector;

/// Adaptive-run statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AdaptiveStats {
    pub accepted: u64,
    pub rejected: u64,
    pub h_min_used: f64,
    pub h_max_used: f64,
}

/// Adaptive controller wrapping a [`BdfIntegrator`].
pub struct AdaptiveBdf<V: NVector> {
    pub inner: BdfIntegrator<V>,
    /// Absolute + relative tolerance (scalar, CVODE-style `sqrt(sum w_i^2/n)`).
    pub abstol: f64,
    pub reltol: f64,
    pub h: f64,
    pub h_min: f64,
    pub h_max: f64,
    pub stats: AdaptiveStats,
    prev: Option<V>,
    prev2: Option<V>,
}

impl<V: NVector> AdaptiveBdf<V> {
    pub fn new(y0: V, t0: f64, h0: f64, abstol: f64, reltol: f64, opts: BdfOptions) -> Self {
        AdaptiveBdf {
            inner: BdfIntegrator::new(y0, t0, opts),
            abstol,
            reltol,
            h: h0,
            h_min: h0 * 1e-6,
            h_max: h0 * 1e6,
            stats: AdaptiveStats {
                h_min_used: f64::INFINITY,
                ..Default::default()
            },
            prev: None,
            prev2: None,
        }
    }

    pub fn time(&self) -> f64 {
        self.inner.time()
    }

    pub fn state(&self) -> &V {
        self.inner.state()
    }

    /// Weighted RMS norm of `v` against the current solution magnitude.
    fn error_norm(&self, v: &V) -> f64 {
        let y = self.inner.state();
        let n = y.len().max(1) as f64;
        let ys = y.as_slice();
        let vs = v.as_slice();
        let mut acc = 0.0;
        for i in 0..ys.len() {
            let w = self.abstol + self.reltol * ys[i].abs();
            let e = vs[i] / w;
            acc += e * e;
        }
        (acc / n).sqrt()
    }

    /// Attempt one adaptive step; returns false only on repeated Newton
    /// failure at the minimum step size.
    pub fn step<F, P>(&mut self, t_end: f64, f: &mut F, precond: &mut P) -> bool
    where
        F: FnMut(f64, &[f64], &mut [f64]),
        P: FnMut(&V, &mut V),
    {
        let mut rejects_this_step = 0;
        loop {
            let h = self.h.min(t_end - self.inner.time()).max(self.h_min);
            // Quadratic predictor 3 y_n - 3 y_{n-1} + y_{n-2}: its error is
            // O(h^3), the same order as the BDF2 corrector, so the
            // difference is a Milne-style LTE estimate.
            let y_n = self.inner.state().clone();
            let predictor = match (&self.prev, &self.prev2) {
                (Some(p1), Some(p2)) => {
                    let mut pr = y_n.clone();
                    pr.scale(3.0);
                    pr.linear_sum(-3.0, p1, 1.0);
                    pr.linear_sum(1.0, p2, 1.0);
                    Some(pr)
                }
                _ => None,
            };
            let t_before = self.inner.time();
            if !self.inner.step(h, &mut *f, &mut *precond) {
                // Newton failed: halve and retry.
                self.h = (self.h * 0.25).max(self.h_min);
                rejects_this_step += 1;
                if self.h <= self.h_min * (1.0 + 1e-12) && rejects_this_step > 20 {
                    return false;
                }
                continue;
            }
            // Error estimate from the corrector-predictor difference.
            let err = match &predictor {
                Some(pr) => {
                    let mut diff = self.inner.state().clone();
                    diff.linear_sum(-1.0, pr, 1.0);
                    self.error_norm(&diff) * 0.25
                }
                // Too little history for the quadratic predictor: use the
                // first-order change ||y_new - y_n|| as a conservative
                // estimate, so oversized starting steps get rejected (the
                // CVODE small-h startup behaviour).
                None => {
                    let mut diff = self.inner.state().clone();
                    diff.linear_sum(-1.0, &y_n, 1.0);
                    self.error_norm(&diff) * 0.05
                }
            };
            if err <= 1.0 || rejects_this_step >= 10 || h <= self.h_min * (1.0 + 1e-12) {
                self.stats.accepted += 1;
                self.stats.h_min_used = self.stats.h_min_used.min(h);
                self.stats.h_max_used = self.stats.h_max_used.max(h);
                self.prev2 = self.prev.take();
                self.prev = Some(y_n);
                let growth = if err > 1e-12 {
                    0.9 * err.powf(-1.0 / 3.0)
                } else {
                    2.0
                };
                self.h = (self.h * growth.clamp(0.3, 2.0)).clamp(self.h_min, self.h_max);
                return true;
            }
            // Reject: restart from the pre-step state (CVODE retries the
            // step; our fixed-coefficient core rebuilds instead).
            self.stats.rejected += 1;
            rejects_this_step += 1;
            self.inner = rebuild(&self.inner, y_n, t_before);
            let shrink = (0.9 * err.powf(-1.0 / 3.0)).clamp(0.1, 0.7);
            self.h = (self.h * shrink).max(self.h_min);
        }
    }

    /// Integrate to `t_end`; returns false on unrecoverable failure.
    pub fn integrate_to<F, P>(&mut self, t_end: f64, mut f: F, mut precond: P) -> bool
    where
        F: FnMut(f64, &[f64], &mut [f64]),
        P: FnMut(&V, &mut V),
    {
        let mut guard = 0;
        while self.inner.time() < t_end - 1e-12 {
            if !self.step(t_end, &mut f, &mut precond) {
                return false;
            }
            guard += 1;
            if guard > 2_000_000 {
                return false;
            }
        }
        true
    }
}

/// Restart an integrator from a known state (used for step rejection).
fn rebuild<V: NVector>(old: &BdfIntegrator<V>, y: V, t: f64) -> BdfIntegrator<V> {
    let mut fresh = BdfIntegrator::new(y, t, old.opts);
    fresh.stats = old.stats;
    fresh
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nvector::HostVec;

    fn ident(r: &HostVec, z: &mut HostVec) {
        z.copy_from(r);
    }

    #[test]
    fn adaptive_decay_is_accurate() {
        let mut a = AdaptiveBdf::new(
            HostVec::from_vec(vec![1.0]),
            0.0,
            1e-3,
            1e-8,
            1e-4,
            BdfOptions::default(),
        );
        let ok = a.integrate_to(1.0, |_t, y, dy| dy[0] = -y[0], ident);
        assert!(ok);
        let err = (a.state().0[0] - (-1.0f64).exp()).abs();
        assert!(err < 1e-3, "{err}");
    }

    #[test]
    fn step_size_grows_after_the_transient() {
        // Fast transient then slow drift: y' = -200 (y - 1) + small forcing.
        let mut a = AdaptiveBdf::new(
            HostVec::from_vec(vec![0.0]),
            0.0,
            1e-4,
            1e-7,
            1e-4,
            BdfOptions::default(),
        );
        let ok = a.integrate_to(
            2.0,
            |t, y, dy| dy[0] = -200.0 * (y[0] - 1.0) + 0.01 * (0.5 * t).sin(),
            ident,
        );
        assert!(ok);
        // After the transient the controller should run far beyond h0.
        assert!(
            a.stats.h_max_used > 20.0 * a.stats.h_min_used,
            "h range too narrow: [{}, {}]",
            a.stats.h_min_used,
            a.stats.h_max_used
        );
        assert!((a.state().0[0] - 1.0).abs() < 0.01);
    }

    #[test]
    fn adaptive_uses_fewer_steps_than_fixed_at_matched_accuracy() {
        // Fixed-step at the adaptive run's smallest h would need far more
        // steps for the same horizon.
        let mut a = AdaptiveBdf::new(
            HostVec::from_vec(vec![0.0]),
            0.0,
            1e-4,
            1e-7,
            1e-4,
            BdfOptions::default(),
        );
        a.integrate_to(1.0, |_t, y, dy| dy[0] = -100.0 * (y[0] - 1.0), ident);
        let adaptive_steps = a.stats.accepted;
        let fixed_equiv = (1.0 / a.stats.h_min_used) as u64;
        assert!(
            adaptive_steps * 3 < fixed_equiv,
            "adaptive {adaptive_steps} vs fixed-at-h_min {fixed_equiv}"
        );
    }

    #[test]
    fn rejections_do_not_advance_time_incorrectly() {
        let mut a = AdaptiveBdf::new(
            HostVec::from_vec(vec![1.0]),
            0.0,
            0.5, // absurdly large h0 forces rejections
            1e-8,
            1e-6,
            BdfOptions::default(),
        );
        let ok = a.integrate_to(1.0, |_t, y, dy| dy[0] = -10.0 * y[0], ident);
        assert!(ok);
        assert!((a.time() - 1.0).abs() < 1e-9);
        let exact = (-10.0f64).exp();
        assert!((a.state().0[0] - exact).abs() < 1e-3, "{}", a.state().0[0]);
    }
}
