//! The backend-generic vector interface (SUNDIALS `N_Vector` analogue).

use std::cell::RefCell;
use std::rc::Rc;

/// Generic vector operations the integrator is written against.
pub trait NVector: Clone {
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    fn fill(&mut self, v: f64);
    fn copy_from(&mut self, other: &Self);
    /// `self = a * x + b * self`.
    fn linear_sum(&mut self, a: f64, x: &Self, b: f64);
    fn scale(&mut self, a: f64);
    fn dot(&self, other: &Self) -> f64;
    fn max_norm(&self) -> f64;
    /// Weighted RMS norm with weight vector `w` (CVODE's error norm).
    fn wrms_norm(&self, w: &Self) -> f64;
    /// Read-only view of the data (for RHS evaluation).
    fn as_slice(&self) -> &[f64];
    /// Mutable view of the data.
    fn as_mut_slice(&mut self) -> &mut [f64];
}

/// Host-memory vector.
#[derive(Debug, Clone, PartialEq)]
pub struct HostVec(pub Vec<f64>);

impl HostVec {
    pub fn zeros(n: usize) -> HostVec {
        HostVec(vec![0.0; n])
    }

    pub fn from_vec(v: Vec<f64>) -> HostVec {
        HostVec(v)
    }
}

impl NVector for HostVec {
    fn len(&self) -> usize {
        self.0.len()
    }

    fn fill(&mut self, v: f64) {
        self.0.fill(v);
    }

    fn copy_from(&mut self, other: &Self) {
        self.0.copy_from_slice(&other.0);
    }

    fn linear_sum(&mut self, a: f64, x: &Self, b: f64) {
        for (s, xi) in self.0.iter_mut().zip(&x.0) {
            *s = a * xi + b * *s;
        }
    }

    fn scale(&mut self, a: f64) {
        for s in self.0.iter_mut() {
            *s *= a;
        }
    }

    fn dot(&self, other: &Self) -> f64 {
        linalg::dot(&self.0, &other.0)
    }

    fn max_norm(&self) -> f64 {
        self.0.iter().map(|v| v.abs()).fold(0.0, f64::max)
    }

    fn wrms_norm(&self, w: &Self) -> f64 {
        let n = self.0.len().max(1);
        (self
            .0
            .iter()
            .zip(&w.0)
            .map(|(v, wi)| (v * wi) * (v * wi))
            .sum::<f64>()
            / n as f64)
            .sqrt()
    }

    fn as_slice(&self) -> &[f64] {
        &self.0
    }

    fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.0
    }
}

/// Counts of vector operations, shared by all clones of a [`CountingVec`].
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct OpCounts {
    pub streaming_ops: u64,
    pub reductions: u64,
    pub bytes_moved: f64,
}

/// A vector that records every operation into a shared counter — the
/// "device-resident" backend. The integrator stays on the CPU; only vector
/// data (and therefore these ops) lives on the device, exactly the
/// SUNDIALS port architecture. A benchmark charges `OpCounts` to a
/// [`hetsim`] device afterwards.
#[derive(Debug, Clone)]
pub struct CountingVec {
    pub data: Vec<f64>,
    counts: Rc<RefCell<OpCounts>>,
}

impl CountingVec {
    pub fn zeros(n: usize, counts: Rc<RefCell<OpCounts>>) -> CountingVec {
        CountingVec {
            data: vec![0.0; n],
            counts,
        }
    }

    pub fn from_vec(v: Vec<f64>, counts: Rc<RefCell<OpCounts>>) -> CountingVec {
        CountingVec { data: v, counts }
    }

    pub fn shared_counts() -> Rc<RefCell<OpCounts>> {
        Rc::new(RefCell::new(OpCounts::default()))
    }

    fn stream(&self, vectors: f64) {
        let mut c = self.counts.borrow_mut();
        c.streaming_ops += 1;
        c.bytes_moved += vectors * 8.0 * self.data.len() as f64;
    }

    fn reduce(&self) {
        let mut c = self.counts.borrow_mut();
        c.reductions += 1;
        c.bytes_moved += 8.0 * self.data.len() as f64;
    }
}

impl NVector for CountingVec {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn fill(&mut self, v: f64) {
        self.stream(1.0);
        self.data.fill(v);
    }

    fn copy_from(&mut self, other: &Self) {
        self.stream(2.0);
        self.data.copy_from_slice(&other.data);
    }

    fn linear_sum(&mut self, a: f64, x: &Self, b: f64) {
        self.stream(3.0);
        for (s, xi) in self.data.iter_mut().zip(&x.data) {
            *s = a * xi + b * *s;
        }
    }

    fn scale(&mut self, a: f64) {
        self.stream(2.0);
        for s in self.data.iter_mut() {
            *s *= a;
        }
    }

    fn dot(&self, other: &Self) -> f64 {
        self.reduce();
        linalg::dot(&self.data, &other.data)
    }

    fn max_norm(&self) -> f64 {
        self.reduce();
        self.data.iter().map(|v| v.abs()).fold(0.0, f64::max)
    }

    fn wrms_norm(&self, w: &Self) -> f64 {
        self.reduce();
        let n = self.data.len().max(1);
        (self
            .data
            .iter()
            .zip(&w.data)
            .map(|(v, wi)| (v * wi) * (v * wi))
            .sum::<f64>()
            / n as f64)
            .sqrt()
    }

    fn as_slice(&self) -> &[f64] {
        &self.data
    }

    fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_vec_ops() {
        let mut a = HostVec::from_vec(vec![1.0, 2.0]);
        let b = HostVec::from_vec(vec![3.0, 4.0]);
        a.linear_sum(2.0, &b, 1.0);
        assert_eq!(a.0, vec![7.0, 10.0]);
        assert_eq!(a.dot(&b), 61.0);
        assert_eq!(a.max_norm(), 10.0);
    }

    #[test]
    fn wrms_norm_of_uniform() {
        let v = HostVec::from_vec(vec![2.0; 8]);
        let w = HostVec::from_vec(vec![0.5; 8]);
        assert!((v.wrms_norm(&w) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn counting_vec_tracks_ops_across_clones() {
        let c = CountingVec::shared_counts();
        let mut a = CountingVec::zeros(100, c.clone());
        let b = CountingVec::from_vec(vec![1.0; 100], c.clone());
        a.copy_from(&b);
        a.linear_sum(1.0, &b, 2.0);
        let _ = a.dot(&b);
        let counts = *c.borrow();
        assert_eq!(counts.streaming_ops, 2); // copy_from + linear_sum
        assert_eq!(counts.reductions, 1);
        assert!(counts.bytes_moved > 0.0);
    }

    #[test]
    fn counting_vec_matches_host_semantics() {
        let c = CountingVec::shared_counts();
        let mut a = CountingVec::from_vec(vec![1.0, -2.0], c.clone());
        a.scale(-2.0);
        assert_eq!(a.data, vec![-2.0, 4.0]);
    }
}
