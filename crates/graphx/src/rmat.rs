//! Kronecker (RMAT) graph generation and CSR adjacency.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// RMAT quadrant probabilities (Graph500 defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// Edges per vertex.
    pub edge_factor: usize,
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            edge_factor: 16,
        }
    }
}

/// An undirected graph in CSR adjacency form.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    pub n: usize,
    pub offsets: Vec<usize>,
    pub targets: Vec<usize>,
}

impl CsrGraph {
    /// Generate an RMAT graph of `2^scale` vertices; deterministic in
    /// `seed`. Self-loops are dropped; duplicate edges are kept (Graph500
    /// does the same).
    pub fn rmat(scale: u32, params: RmatParams, seed: u64) -> CsrGraph {
        let n = 1usize << scale;
        let m = n * params.edge_factor;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            let (mut u, mut v) = (0usize, 0usize);
            for bit in (0..scale).rev() {
                let r: f64 = rng.gen();
                let (du, dv) = if r < params.a {
                    (0, 0)
                } else if r < params.a + params.b {
                    (0, 1)
                } else if r < params.a + params.b + params.c {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u |= du << bit;
                v |= dv << bit;
            }
            if u != v {
                edges.push((u, v));
            }
        }
        CsrGraph::from_edges(n, &edges)
    }

    /// Build an undirected CSR from an edge list (each edge stored both
    /// ways).
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> CsrGraph {
        let mut degree = vec![0usize; n];
        for &(u, v) in edges {
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut targets = vec![0usize; offsets[n]];
        let mut cursor = offsets.clone();
        for &(u, v) in edges {
            targets[cursor[u]] = v;
            cursor[u] += 1;
            targets[cursor[v]] = u;
            cursor[v] += 1;
        }
        CsrGraph {
            n,
            offsets,
            targets,
        }
    }

    pub fn num_directed_edges(&self) -> usize {
        self.targets.len()
    }

    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// A vertex with nonzero degree (BFS roots must not be isolated).
    pub fn non_isolated_vertex(&self, seed: u64) -> usize {
        let mut rng = SmallRng::seed_from_u64(seed);
        loop {
            let v = rng.gen_range(0..self.n);
            if self.degree(v) > 0 {
                return v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_from_edges_is_symmetric() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.num_directed_edges(), 6);
    }

    #[test]
    fn rmat_is_deterministic_and_sized() {
        let a = CsrGraph::rmat(8, RmatParams::default(), 42);
        let b = CsrGraph::rmat(8, RmatParams::default(), 42);
        assert_eq!(a.targets, b.targets);
        assert_eq!(a.n, 256);
        // 16 edges per vertex, both directions, minus dropped self-loops.
        assert!(a.num_directed_edges() > 2 * 256 * 12);
    }

    #[test]
    fn rmat_degrees_are_skewed() {
        // The point of RMAT: a heavy-tailed degree distribution.
        let g = CsrGraph::rmat(10, RmatParams::default(), 7);
        let max_deg = (0..g.n).map(|v| g.degree(v)).max().expect("non-empty");
        let mean = g.num_directed_edges() as f64 / g.n as f64;
        assert!(max_deg as f64 > 8.0 * mean, "max {max_deg}, mean {mean}");
    }

    #[test]
    fn no_self_loops() {
        let g = CsrGraph::rmat(8, RmatParams::default(), 3);
        for v in 0..g.n {
            assert!(!g.neighbors(v).contains(&v));
        }
    }
}
