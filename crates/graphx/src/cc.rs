//! Connected components — HavoqGT's other flagship analytic, used here to
//! exercise the same edge-centric machinery as BFS with a different
//! convergence pattern (label propagation / pointer-jumping hybrid).

use crate::rmat::CsrGraph;

/// Connected-component labels via label propagation with pointer jumping;
/// returns (labels, iterations). Each vertex ends with the minimum vertex
/// id of its component.
pub fn connected_components(g: &CsrGraph) -> (Vec<usize>, usize) {
    let n = g.n;
    let mut label: Vec<usize> = (0..n).collect();
    let mut iters = 0;
    loop {
        iters += 1;
        let mut changed = false;
        // Propagate: adopt the smallest neighbour label.
        for u in 0..n {
            for &v in g.neighbors(u) {
                if label[v] < label[u] {
                    label[u] = label[v];
                    changed = true;
                }
            }
        }
        // Pointer jumping: compress chains label[u] -> label[label[u]].
        for u in 0..n {
            while label[label[u]] != label[u] {
                label[u] = label[label[u]];
                changed = true;
            }
        }
        if !changed {
            break;
        }
        assert!(iters <= n + 1, "label propagation failed to converge");
    }
    (label, iters)
}

/// Number of distinct components (isolated vertices count as their own).
pub fn component_count(labels: &[usize]) -> usize {
    let mut roots: Vec<usize> = labels.to_vec();
    roots.sort_unstable();
    roots.dedup();
    roots.len()
}

/// Size of the largest component.
pub fn largest_component(labels: &[usize]) -> usize {
    use std::collections::HashMap;
    let mut counts: HashMap<usize, usize> = HashMap::new();
    for &l in labels {
        *counts.entry(l).or_insert(0) += 1;
    }
    counts.values().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_top_down;
    use crate::rmat::RmatParams;

    #[test]
    fn two_cliques_are_two_components() {
        let mut edges = vec![];
        for i in 0..4 {
            for j in (i + 1)..4 {
                edges.push((i, j));
                edges.push((i + 4, j + 4));
            }
        }
        let g = CsrGraph::from_edges(8, &edges);
        let (labels, _) = connected_components(&g);
        assert_eq!(component_count(&labels), 2);
        assert!(labels[..4].iter().all(|&l| l == 0));
        assert!(labels[4..].iter().all(|&l| l == 4));
    }

    #[test]
    fn cc_agrees_with_bfs_reachability() {
        let g = CsrGraph::rmat(10, RmatParams::default(), 9);
        let (labels, _) = connected_components(&g);
        let root = g.non_isolated_vertex(1);
        let bfs = bfs_top_down(&g, root);
        // Everything BFS reaches shares the root's component label, and
        // nothing outside it does.
        let root_label = labels[root];
        for v in 0..g.n {
            assert_eq!(
                bfs.parent[v].is_some(),
                labels[v] == root_label || v == root,
                "vertex {v}"
            );
        }
        assert_eq!(largest_component(&labels), bfs.reached);
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let g = CsrGraph::from_edges(5, &[(0, 1)]);
        let (labels, _) = connected_components(&g);
        assert_eq!(component_count(&labels), 4); // {0,1}, {2}, {3}, {4}
    }

    #[test]
    fn labels_are_component_minima() {
        let g = CsrGraph::from_edges(6, &[(5, 3), (3, 4), (1, 2)]);
        let (labels, _) = connected_components(&g);
        assert_eq!(labels[5], 3);
        assert_eq!(labels[4], 3);
        assert_eq!(labels[2], 1);
        assert_eq!(labels[0], 0);
    }

    #[test]
    fn converges_quickly_on_rmat() {
        let g = CsrGraph::rmat(12, RmatParams::default(), 11);
        let (_, iters) = connected_components(&g);
        // Pointer jumping keeps the iteration count near the graph
        // diameter, which is tiny for RMAT.
        assert!(iters < 15, "{iters}");
    }
}
