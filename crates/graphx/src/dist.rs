//! The Table 2 machine-throughput model.
//!
//! Distributed BFS throughput is bounded by three resources:
//!
//! 1. **DRAM random access** when the partition fits in memory — pointer
//!    chasing wastes most of each cache line, so the achieved fraction of
//!    stream bandwidth is about a percent;
//! 2. **NVMe streaming** when the graph is semi-external (HavoqGT's
//!    signature mode; how Catalyst and the final system ran scales 40-42);
//! 3. **network all-to-all** for the frontier exchange across nodes.
//!
//! GTEPS is the min of the three. The efficiency constants are calibrated
//! once against the paper's single-node 2011 rows and held fixed for every
//! other machine.

use hetsim::{CollectiveKind, Event, Machine, Network};

use crate::bfs::BfsResult;
use crate::rmat::CsrGraph;

/// Fraction of DRAM stream bandwidth achieved by random edge access.
pub const DRAM_RANDOM_EFF: f64 = 0.012;
/// Fraction of NVMe bandwidth achieved by semi-external edge streaming.
pub const NVME_STREAM_EFF: f64 = 0.5;
/// Fraction of injection bandwidth achieved by the frontier all-to-all.
pub const NET_EFF: f64 = 0.017;
/// Bytes touched per traversed edge.
pub const BYTES_PER_EDGE: f64 = 16.0;
/// Bytes crossing the network per traversed edge (packed updates).
pub const NET_BYTES_PER_EDGE: f64 = 8.0;
/// Storage bytes per vertex: vertex state plus its 16 edges (~9 B each,
/// delta-encoded).
pub const BYTES_PER_VERTEX_STORED: f64 = 150.0;

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    pub machine: &'static str,
    pub year: u32,
    pub nodes: usize,
    pub scale: u32,
    pub gteps: f64,
    /// Whether the run is semi-external (NVMe-resident edges).
    pub semi_external: bool,
}

/// Largest Graph500 scale that fits on the machine (DRAM + NVMe).
pub fn max_scale(machine: &Machine) -> u32 {
    let per_node = machine.node.cpu.mem_capacity_gib * 1024.0 * 1024.0 * 1024.0
        + machine
            .node
            .nvme
            .map(|(cap_gib, _)| cap_gib * 1024.0 * 1024.0 * 1024.0)
            .unwrap_or(0.0);
    let total = per_node * machine.nodes as f64;
    (total / BYTES_PER_VERTEX_STORED).log2().floor() as u32
}

/// Model GTEPS for a BFS at `scale` on `machine`.
pub fn machine_gteps(machine: &Machine, scale: u32) -> Table2Row {
    let vertices = 2f64.powi(scale as i32);
    let graph_bytes = vertices * BYTES_PER_VERTEX_STORED;
    let dram_bytes =
        machine.node.cpu.mem_capacity_gib * 1024.0 * 1024.0 * 1024.0 * machine.nodes as f64;
    let semi_external = graph_bytes > dram_bytes;

    // Per-node edge-processing rate.
    let node_rate = if semi_external {
        let (_, nvme_bw) = machine.node.nvme.unwrap_or((0.0, 0.3));
        nvme_bw * 1e9 * NVME_STREAM_EFF / BYTES_PER_EDGE
    } else {
        machine.node.cpu.mem_bw_gbs * 1e9 * DRAM_RANDOM_EFF / BYTES_PER_EDGE
    };
    let compute_bound = node_rate * machine.nodes as f64;

    // Network bound (only binds with > 1 node).
    let teps = if machine.nodes > 1 {
        let net_bound = machine.nodes as f64 * machine.network.injection_bw_gbs * 1e9 * NET_EFF
            / NET_BYTES_PER_EDGE;
        compute_bound.min(net_bound)
    } else {
        compute_bound
    };

    Table2Row {
        machine: machine.name,
        year: machine.year,
        nodes: machine.nodes,
        scale,
        gteps: teps / 1e9,
        semi_external,
    }
}

/// Cyclic (round-robin) vertex partition over `ranks` owners — HavoqGT's
/// delegate-free base layout. Vertex `v` lives on rank `v % ranks` at local
/// index `v / ranks`; [`VertexPartition::to_global`] inverts exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexPartition {
    pub ranks: usize,
}

impl VertexPartition {
    pub fn new(ranks: usize) -> VertexPartition {
        VertexPartition {
            ranks: ranks.max(1),
        }
    }

    /// Which rank owns global vertex `v`.
    pub fn owner(&self, v: usize) -> usize {
        v % self.ranks
    }

    /// Owner-local index of global vertex `v`.
    pub fn to_local(&self, v: usize) -> usize {
        v / self.ranks
    }

    /// Global id of `(rank, local)` — inverse of `owner` + `to_local`.
    pub fn to_global(&self, rank: usize, local: usize) -> usize {
        local * self.ranks + rank
    }
}

/// A distributed BFS run: the (real) traversal result plus the modelled
/// cost of its per-level frontier exchanges.
#[derive(Debug, Clone)]
pub struct DistBfs {
    pub result: BfsResult,
    /// Cross-rank parent updates, in wire bytes ([`NET_BYTES_PER_EDGE`] each).
    pub exchanged_bytes: f64,
    /// Completion time of the last frontier exchange (levels chain on the
    /// NIC tracks via events, so this is the network-side critical path).
    pub comm_time: f64,
}

/// Level-synchronous distributed BFS: the traversal really runs (the parent
/// tree is exact and [`crate::bfs::validate_tree`]-able), while every
/// level's frontier exchange is issued as a **non-blocking all-to-all** on
/// `net`, chained level-to-level through [`Event`]s — the pattern HavoqGT
/// uses to keep the fabric busy while the next frontier is being scanned.
pub fn distributed_bfs(g: &CsrGraph, root: usize, net: &Network) -> DistBfs {
    let part = VertexPartition::new(net.ranks);
    let mut parent: Vec<Option<usize>> = vec![None; g.n];
    parent[root] = Some(root);
    let mut frontier = vec![root];
    let mut levels = 0usize;
    let mut edges_examined = 0u64;
    let mut reached = 1usize;
    let mut exchanged_bytes = 0.0;
    let mut gate: Option<Event> = None;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        let mut remote_updates = 0u64;
        for &u in &frontier {
            for &v in g.neighbors(u) {
                edges_examined += 1;
                if parent[v].is_none() {
                    parent[v] = Some(u);
                    reached += 1;
                    if part.owner(v) != part.owner(u) {
                        remote_updates += 1;
                    }
                    next.push(v);
                }
            }
        }
        // Exchange this level's cross-rank updates; the next level's
        // exchange cannot start before this one completes.
        let wire = remote_updates as f64 * NET_BYTES_PER_EDGE;
        let bytes_per_rank = wire / net.ranks as f64;
        gate = Some(net.icollective(CollectiveKind::AllToAll, bytes_per_rank, gate));
        exchanged_bytes += wire;
        levels += 1;
        frontier = next;
    }
    DistBfs {
        result: BfsResult {
            parent,
            levels,
            edges_examined,
            reached,
        },
        exchanged_bytes,
        comm_time: gate.map(|e| e.time).unwrap_or(0.0),
    }
}

/// Regenerate all six Table 2 rows (paper scales retained).
pub fn table2() -> Vec<Table2Row> {
    use hetsim::machines::*;
    vec![
        machine_gteps(&kraken(), 34),
        machine_gteps(&leviathan(), 36),
        machine_gteps(&hyperion(), 36),
        machine_gteps(&bertha(), 37),
        machine_gteps(&catalyst(), 40),
        machine_gteps(&sierra_nodes(2048), 42),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_is_monotone_in_time_for_scalable_machines() {
        let rows = table2();
        assert_eq!(rows.len(), 6);
        // The headline trajectory: 2011 single node ~0.05 to final ~67.
        assert!(rows[0].gteps < 0.2, "{:?}", rows[0]);
        assert!(rows[5].gteps > 20.0, "{:?}", rows[5]);
        assert!(rows[5].gteps / rows[0].gteps > 300.0);
    }

    #[test]
    fn single_node_rows_are_dram_bound_and_order_of_paper() {
        let rows = table2();
        // Kraken/Leviathan ~0.053 in the paper; we land in the same decade.
        for r in &rows[0..2] {
            assert!(r.gteps > 0.01 && r.gteps < 0.2, "{r:?}");
        }
    }

    #[test]
    fn catalyst_and_final_system_run_semi_external() {
        let rows = table2();
        let catalyst = &rows[4];
        let fin = &rows[5];
        assert!(catalyst.semi_external, "{catalyst:?}");
        assert!(fin.semi_external, "{fin:?}");
        // Paper: 4.175 and 67.258.
        assert!(
            catalyst.gteps > 1.0 && catalyst.gteps < 12.0,
            "{catalyst:?}"
        );
        assert!(fin.gteps > 25.0 && fin.gteps < 150.0, "{fin:?}");
    }

    #[test]
    fn hyperion_is_network_bound() {
        let rows = table2();
        let hyp = &rows[2];
        // 64 nodes do not deliver 64x a single node.
        let single = rows[0].gteps;
        assert!(hyp.gteps < 30.0 * single, "{hyp:?} vs single {single}");
        assert!(hyp.gteps > rows[0].gteps);
    }

    #[test]
    fn max_scale_grows_with_machine_storage() {
        use hetsim::machines::*;
        let s_kraken = max_scale(&kraken());
        let s_catalyst = max_scale(&catalyst());
        let s_final = max_scale(&sierra_nodes(2048));
        assert!(s_kraken < s_catalyst);
        assert!(s_catalyst < s_final);
        // Ballpark the paper's scale column.
        assert!((s_kraken as i32 - 34).abs() <= 2, "{s_kraken}");
        assert!((s_final as i32 - 42).abs() <= 5, "{s_final}");
    }

    fn fabric(ranks: usize) -> Network {
        Network::new(
            hetsim::spec::NetworkSpec {
                injection_bw_gbs: 25.0,
                latency_us: 1.5,
                gpudirect: false,
            },
            ranks,
        )
    }

    #[test]
    fn vertex_partition_round_trips() {
        for ranks in [1usize, 2, 3, 7, 64] {
            let p = VertexPartition::new(ranks);
            for v in 0..1000 {
                let (r, l) = (p.owner(v), p.to_local(v));
                assert!(r < ranks);
                assert_eq!(p.to_global(r, l), v, "ranks={ranks} v={v}");
            }
            // Locals are dense per rank: the first `ranks` vertices map to
            // local 0 on distinct owners.
            for v in 0..ranks {
                assert_eq!(p.to_local(v), 0);
            }
        }
        // Degenerate input is clamped, not a divide-by-zero.
        assert_eq!(VertexPartition::new(0).ranks, 1);
    }

    #[test]
    fn distributed_bfs_matches_shared_memory_traversal() {
        use crate::bfs::{bfs_top_down, validate_tree};
        use crate::rmat::{CsrGraph, RmatParams};
        let g = CsrGraph::rmat(10, RmatParams::default(), 42);
        let root = g.non_isolated_vertex(7);
        let net = fabric(16);
        let d = distributed_bfs(&g, root, &net);
        let s = bfs_top_down(&g, root);
        assert_eq!(
            d.result.parent, s.parent,
            "partitioning must not change the tree"
        );
        assert_eq!(d.result.levels, s.levels);
        assert_eq!(d.result.reached, s.reached);
        assert!(validate_tree(&g, root, &d.result));
        // One chained exchange per level, riding the NIC tracks.
        assert_eq!(net.counters().collectives as usize, d.result.levels);
        assert!(d.comm_time > 0.0);
        assert!((net.now() - d.comm_time).abs() < 1e-15);
    }

    #[test]
    fn more_ranks_cut_more_edges() {
        use crate::rmat::{CsrGraph, RmatParams};
        let g = CsrGraph::rmat(10, RmatParams::default(), 42);
        let root = g.non_isolated_vertex(7);
        let few = distributed_bfs(&g, root, &fabric(2));
        let many = distributed_bfs(&g, root, &fabric(64));
        assert!(
            many.exchanged_bytes >= few.exchanged_bytes,
            "{} vs {}",
            many.exchanged_bytes,
            few.exchanged_bytes
        );
        // Single "rank": everything is local, nothing crosses the wire.
        let solo = distributed_bfs(&g, root, &fabric(1));
        assert_eq!(solo.exchanged_bytes, 0.0);
    }

    #[test]
    fn nvme_lets_larger_graphs_run() {
        // The §4.4 claim: NVMe + CPUs run larger problems (and faster than
        // not running at all).
        use hetsim::machines::*;
        let with_nvme = max_scale(&catalyst());
        let mut no_nvme = catalyst();
        no_nvme.node.nvme = None;
        let without = max_scale(&no_nvme);
        assert!(with_nvme > without);
    }
}

#[cfg(test)]
mod diag {
    #[test]
    #[ignore]
    fn print_table() {
        for r in super::table2() {
            println!("{:?}", r);
        }
    }
}
