//! `graphx` — the HavoqGT stand-in (§4.4, Table 2).
//!
//! The Data Science activity ported the HavoqGT graph framework, showing
//! that node-local NVMe plus CPUs runs "larger graph problems faster" and
//! producing the historical Table 2 (best Graph500-style scale and GTEPS
//! per machine, 0.053 GTEPS in 2011 to 67.258 GTEPS on 2048 nodes of the
//! final system in 2018).
//!
//! * [`rmat`] — Kronecker (RMAT) generator with Graph500 parameters;
//! * [`bfs`] — level-synchronous top-down BFS and the direction-optimising
//!   variant, with tree validation and TEPS accounting (real runs);
//! * [`dist`] — the machine-level throughput model that regenerates
//!   Table 2 from `hetsim` machine presets (DRAM/NVMe/network bounds).

pub mod bfs;
pub mod cc;
pub mod dist;
pub mod rmat;

pub use bfs::{bfs_direction_optimising, bfs_top_down, validate_tree, BfsResult};
pub use cc::{component_count, connected_components, largest_component};
pub use dist::{distributed_bfs, machine_gteps, max_scale, DistBfs, Table2Row, VertexPartition};
pub use rmat::{CsrGraph, RmatParams};
