//! Breadth-first search: level-synchronous top-down and the
//! direction-optimising (bottom-up switching) variant.

use crate::rmat::CsrGraph;

/// BFS output: parent tree plus traversal accounting.
#[derive(Debug, Clone)]
pub struct BfsResult {
    pub parent: Vec<Option<usize>>,
    pub levels: usize,
    /// Directed edges examined (for TEPS).
    pub edges_examined: u64,
    /// Vertices reached (including the root).
    pub reached: usize,
}

impl BfsResult {
    /// Traversed-edges-per-second given a runtime.
    pub fn teps(&self, seconds: f64) -> f64 {
        self.edges_examined as f64 / seconds.max(1e-300)
    }
}

/// Classic top-down level-synchronous BFS.
pub fn bfs_top_down(g: &CsrGraph, root: usize) -> BfsResult {
    let mut parent: Vec<Option<usize>> = vec![None; g.n];
    parent[root] = Some(root);
    let mut frontier = vec![root];
    let mut levels = 0;
    let mut edges = 0u64;
    let mut reached = 1usize;
    while !frontier.is_empty() {
        levels += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in g.neighbors(u) {
                edges += 1;
                if parent[v].is_none() {
                    parent[v] = Some(u);
                    next.push(v);
                    reached += 1;
                }
            }
        }
        frontier = next;
    }
    BfsResult {
        parent,
        levels,
        edges_examined: edges,
        reached,
    }
}

/// Direction-optimising BFS: switch to bottom-up when the frontier is a
/// large fraction of the graph (Beamer's heuristic), back to top-down when
/// it shrinks.
pub fn bfs_direction_optimising(g: &CsrGraph, root: usize) -> BfsResult {
    let mut parent: Vec<Option<usize>> = vec![None; g.n];
    parent[root] = Some(root);
    let mut in_frontier = vec![false; g.n];
    in_frontier[root] = true;
    let mut frontier_size = 1usize;
    let mut frontier_edges: u64 = g.degree(root) as u64;
    let mut levels = 0;
    let mut edges = 0u64;
    let mut reached = 1usize;
    let total_edges = g.num_directed_edges() as u64;

    while frontier_size > 0 {
        levels += 1;
        let bottom_up = frontier_edges * 14 > total_edges;
        let mut next = vec![false; g.n];
        let mut next_size = 0usize;
        let mut next_edges = 0u64;
        if bottom_up {
            // Every unvisited vertex scans its neighbours for a parent.
            for v in 0..g.n {
                if parent[v].is_some() {
                    continue;
                }
                for &u in g.neighbors(v) {
                    edges += 1;
                    if in_frontier[u] {
                        parent[v] = Some(u);
                        next[v] = true;
                        next_size += 1;
                        next_edges += g.degree(v) as u64;
                        reached += 1;
                        break; // early exit: the bottom-up win
                    }
                }
            }
        } else {
            for u in 0..g.n {
                if !in_frontier[u] {
                    continue;
                }
                for &v in g.neighbors(u) {
                    edges += 1;
                    if parent[v].is_none() {
                        parent[v] = Some(u);
                        next[v] = true;
                        next_size += 1;
                        next_edges += g.degree(v) as u64;
                        reached += 1;
                    }
                }
            }
        }
        in_frontier = next;
        frontier_size = next_size;
        frontier_edges = next_edges;
    }
    BfsResult {
        parent,
        levels,
        edges_examined: edges,
        reached,
    }
}

/// Validate a BFS parent tree: root self-parented; every edge (v, p(v))
/// exists; levels are consistent (level(v) == level(p(v)) + 1).
pub fn validate_tree(g: &CsrGraph, root: usize, result: &BfsResult) -> bool {
    if result.parent[root] != Some(root) {
        return false;
    }
    // Compute levels by following parents (with cycle guard).
    let mut level = vec![usize::MAX; g.n];
    level[root] = 0;
    for v in 0..g.n {
        let Some(_) = result.parent[v] else { continue };
        // Walk up.
        let mut chain = Vec::new();
        let mut cur = v;
        while level[cur] == usize::MAX {
            chain.push(cur);
            match result.parent[cur] {
                Some(p) if p != cur => cur = p,
                _ => break,
            }
            if chain.len() > g.n {
                return false; // cycle
            }
        }
        let base = level[cur];
        if base == usize::MAX {
            return false;
        }
        for (k, &u) in chain.iter().rev().enumerate() {
            level[u] = base + k + 1;
        }
    }
    for v in 0..g.n {
        if let Some(p) = result.parent[v] {
            if v != root {
                if !g.neighbors(v).contains(&p) {
                    return false;
                }
                if level[v] != level[p] + 1 {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmat::RmatParams;

    fn path_graph(n: usize) -> CsrGraph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn bfs_on_path_has_n_levels() {
        let g = path_graph(10);
        let r = bfs_top_down(&g, 0);
        assert_eq!(r.reached, 10);
        assert_eq!(r.levels, 10);
        assert_eq!(r.parent[5], Some(4));
        assert!(validate_tree(&g, 0, &r));
    }

    #[test]
    fn both_variants_reach_the_same_component() {
        let g = CsrGraph::rmat(10, RmatParams::default(), 5);
        let root = g.non_isolated_vertex(1);
        let td = bfs_top_down(&g, root);
        let do_ = bfs_direction_optimising(&g, root);
        assert_eq!(td.reached, do_.reached);
        // Identical reachability, possibly different parents.
        for v in 0..g.n {
            assert_eq!(
                td.parent[v].is_some(),
                do_.parent[v].is_some(),
                "vertex {v}"
            );
        }
    }

    #[test]
    fn both_trees_validate() {
        let g = CsrGraph::rmat(9, RmatParams::default(), 8);
        let root = g.non_isolated_vertex(2);
        assert!(validate_tree(&g, root, &bfs_top_down(&g, root)));
        assert!(validate_tree(&g, root, &bfs_direction_optimising(&g, root)));
    }

    #[test]
    fn direction_optimising_examines_fewer_edges_on_rmat() {
        // The point of the optimisation: on low-diameter skewed graphs the
        // bottom-up phase skips most edge checks.
        let g = CsrGraph::rmat(12, RmatParams::default(), 3);
        let root = g.non_isolated_vertex(4);
        let td = bfs_top_down(&g, root);
        let dopt = bfs_direction_optimising(&g, root);
        assert!(
            dopt.edges_examined < td.edges_examined,
            "{} vs {}",
            dopt.edges_examined,
            td.edges_examined
        );
    }

    #[test]
    fn disconnected_vertices_stay_unreached() {
        let mut edges = vec![(0, 1), (1, 2)];
        edges.push((4, 5)); // separate component
        let g = CsrGraph::from_edges(6, &edges);
        let r = bfs_top_down(&g, 0);
        assert_eq!(r.reached, 3);
        assert!(r.parent[4].is_none());
        assert!(validate_tree(&g, 0, &r));
    }

    #[test]
    fn corrupted_tree_fails_validation() {
        let g = path_graph(6);
        let mut r = bfs_top_down(&g, 0);
        r.parent[5] = Some(1); // not an edge
        assert!(!validate_tree(&g, 0, &r));
    }

    #[test]
    fn teps_accounting() {
        let g = path_graph(4);
        let r = bfs_top_down(&g, 0);
        // Each of the 6 directed edges examined exactly once.
        assert_eq!(r.edges_examined, 6);
        assert!((r.teps(2.0) - 3.0).abs() < 1e-12);
    }
}
