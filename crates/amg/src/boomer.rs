//! BoomerAMG: classical Ruge-Stüben-flavoured algebraic multigrid.
//!
//! Setup (CPU, §4.10.1): strength graph -> greedy independent-set
//! coarsening (PMIS-flavoured) -> direct interpolation -> Galerkin `RAP`.
//! Solve (device): V-cycles of weighted-Jacobi smoothing + SpMV transfers,
//! with the coarsest level solved directly.

use hetsim::{KernelProfile, Sim, Target};
use linalg::dense::{DenseMatrix, Lu};
use linalg::{CsrMatrix, Preconditioner};

/// Setup options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmgOptions {
    /// Strength-of-connection threshold (classical theta).
    pub theta: f64,
    /// Stop coarsening below this many unknowns.
    pub coarse_size: usize,
    /// Maximum number of levels.
    pub max_levels: usize,
    /// Weighted-Jacobi relaxation weight.
    pub jacobi_weight: f64,
    /// Pre/post smoothing sweeps.
    pub sweeps: usize,
}

impl Default for AmgOptions {
    fn default() -> Self {
        AmgOptions {
            theta: 0.25,
            coarse_size: 40,
            max_levels: 25,
            jacobi_weight: 2.0 / 3.0,
            sweeps: 1,
        }
    }
}

/// One multigrid level.
struct Level {
    a: CsrMatrix,
    /// Prolongation from the next-coarser level (absent on the coarsest).
    p: Option<CsrMatrix>,
    /// Restriction (P^T).
    r: Option<CsrMatrix>,
    inv_diag: Vec<f64>,
    // Workspace reused across cycles.
    x: Vec<f64>,
    b: Vec<f64>,
    tmp: Vec<f64>,
}

/// Per-cycle statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleStats {
    pub levels: usize,
    /// Total grid complexity (sum of unknowns over levels / fine unknowns).
    pub grid_complexity: f64,
    /// Operator complexity (sum of nnz over levels / fine nnz).
    pub operator_complexity: f64,
}

/// The assembled hierarchy.
pub struct BoomerAmg {
    levels: Vec<Level>,
    coarse_lu: Option<Lu>,
    opts: AmgOptions,
}

/// Classify points as C (coarse) or F (fine) by a greedy independent set on
/// the strength graph, seeded by descending strong-degree (PMIS flavour).
fn coarsen(strong: &[Vec<usize>]) -> Vec<bool> {
    let n = strong.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&i| std::cmp::Reverse(strong[i].len()));
    #[derive(Clone, Copy, PartialEq)]
    enum S {
        Undecided,
        C,
        F,
    }
    let mut state = vec![S::Undecided; n];
    for &i in &order {
        if state[i] != S::Undecided {
            continue;
        }
        state[i] = S::C;
        for &j in &strong[i] {
            if state[j] == S::Undecided {
                state[j] = S::F;
            }
        }
    }
    state.iter().map(|&s| s == S::C).collect()
}

/// Strong neighbours of each row: j such that -a_ij >= theta * max_k(-a_ik).
fn strength_graph(a: &CsrMatrix, theta: f64) -> Vec<Vec<usize>> {
    let mut strong = vec![Vec::new(); a.rows];
    for i in 0..a.rows {
        let (cols, vals) = a.row(i);
        let max_off = cols
            .iter()
            .zip(vals)
            .filter(|(c, _)| **c != i)
            .map(|(_, v)| -v)
            .fold(0.0f64, f64::max);
        if max_off <= 0.0 {
            continue;
        }
        for (c, v) in cols.iter().zip(vals) {
            if *c != i && -v >= theta * max_off {
                strong[i].push(*c);
            }
        }
    }
    strong
}

/// Direct interpolation from C-points.
fn interpolation(a: &CsrMatrix, strong: &[Vec<usize>], is_c: &[bool]) -> CsrMatrix {
    let n = a.rows;
    let coarse_index: Vec<usize> = {
        let mut idx = vec![usize::MAX; n];
        let mut next = 0;
        for i in 0..n {
            if is_c[i] {
                idx[i] = next;
                next += 1;
            }
        }
        idx
    };
    let ncoarse = is_c.iter().filter(|&&c| c).count();
    let mut triplets = Vec::new();
    for i in 0..n {
        if is_c[i] {
            triplets.push((i, coarse_index[i], 1.0));
            continue;
        }
        let (cols, vals) = a.row(i);
        let diag = cols
            .iter()
            .zip(vals)
            .find(|(c, _)| **c == i)
            .map(|(_, v)| *v)
            .unwrap_or(1.0);
        // Strong C-neighbours receive interpolation weight.
        let strong_c: Vec<usize> = strong[i].iter().copied().filter(|&j| is_c[j]).collect();
        if strong_c.is_empty() {
            // Isolated F-point: inject nothing (rare for M-matrices).
            continue;
        }
        let sum_all: f64 = cols
            .iter()
            .zip(vals)
            .filter(|(c, _)| **c != i)
            .map(|(_, v)| *v)
            .sum();
        let sum_c: f64 = cols
            .iter()
            .zip(vals)
            .filter(|(c, _)| strong_c.contains(c))
            .map(|(_, v)| *v)
            .sum();
        let alpha = if sum_c.abs() > 1e-300 {
            sum_all / sum_c
        } else {
            1.0
        };
        for (c, v) in cols.iter().zip(vals) {
            if strong_c.contains(c) {
                let w = -alpha * v / diag;
                triplets.push((i, coarse_index[*c], w));
            }
        }
    }
    CsrMatrix::from_triplets(n, ncoarse, &triplets)
}

impl BoomerAmg {
    /// Run the (CPU) setup phase on `a`.
    pub fn setup(a: CsrMatrix, opts: AmgOptions) -> BoomerAmg {
        let mut levels = Vec::new();
        let mut current = a;
        while levels.len() + 1 < opts.max_levels && current.rows > opts.coarse_size {
            let strong = strength_graph(&current, opts.theta);
            let is_c = coarsen(&strong);
            let ncoarse = is_c.iter().filter(|&&c| c).count();
            if ncoarse == 0 || ncoarse >= current.rows {
                break;
            }
            let p = interpolation(&current, &strong, &is_c);
            let r = p.transpose();
            let coarse = CsrMatrix::rap(&r, &current, &p);
            let n = current.rows;
            let inv_diag = current
                .diag()
                .iter()
                .map(|&d| if d.abs() > 1e-300 { 1.0 / d } else { 0.0 })
                .collect();
            levels.push(Level {
                a: current,
                p: Some(p),
                r: Some(r),
                inv_diag,
                x: vec![0.0; n],
                b: vec![0.0; n],
                tmp: vec![0.0; n],
            });
            current = coarse;
        }
        // Coarsest level.
        let n = current.rows;
        let inv_diag = current
            .diag()
            .iter()
            .map(|&d| if d.abs() > 1e-300 { 1.0 / d } else { 0.0 })
            .collect();
        let mut dense = DenseMatrix::zeros(n, n);
        for i in 0..n {
            let (cols, vals) = current.row(i);
            for (c, v) in cols.iter().zip(vals) {
                dense[(i, *c)] = *v;
            }
        }
        let coarse_lu = dense.lu();
        levels.push(Level {
            a: current,
            p: None,
            r: None,
            inv_diag,
            x: vec![0.0; n],
            b: vec![0.0; n],
            tmp: vec![0.0; n],
        });
        BoomerAmg {
            levels,
            coarse_lu,
            opts,
        }
    }

    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    pub fn stats(&self) -> CycleStats {
        let fine_n = self.levels[0].a.rows as f64;
        let fine_nnz = self.levels[0].a.nnz() as f64;
        let total_n: f64 = self.levels.iter().map(|l| l.a.rows as f64).sum();
        let total_nnz: f64 = self.levels.iter().map(|l| l.a.nnz() as f64).sum();
        CycleStats {
            levels: self.levels.len(),
            grid_complexity: total_n / fine_n,
            operator_complexity: total_nnz / fine_nnz,
        }
    }

    fn smooth(level: &mut Level, sweeps: usize, weight: f64) {
        for _ in 0..sweeps {
            level.a.spmv(&level.x, &mut level.tmp);
            for i in 0..level.x.len() {
                level.x[i] += weight * level.inv_diag[i] * (level.b[i] - level.tmp[i]);
            }
        }
    }

    fn vcycle(&mut self, lvl: usize) {
        let nlev = self.levels.len();
        if lvl + 1 == nlev {
            // Coarsest: direct solve.
            let level = &mut self.levels[lvl];
            if let Some(lu) = &self.coarse_lu {
                level.x = lu.solve(&level.b);
            } else {
                Self::smooth(level, 20, self.opts.jacobi_weight);
            }
            return;
        }
        let (sweeps, w) = (self.opts.sweeps, self.opts.jacobi_weight);
        // Pre-smooth and form restricted residual.
        {
            let level = &mut self.levels[lvl];
            Self::smooth(level, sweeps, w);
            level.a.spmv(&level.x, &mut level.tmp);
            for i in 0..level.tmp.len() {
                level.tmp[i] = level.b[i] - level.tmp[i];
            }
        }
        {
            let (fine, coarse) = self.levels.split_at_mut(lvl + 1);
            let fine = &mut fine[lvl];
            let coarse = &mut coarse[0];
            fine.r
                .as_ref()
                .expect("non-coarsest has R")
                .spmv(&fine.tmp, &mut coarse.b);
            coarse.x.fill(0.0);
        }
        self.vcycle(lvl + 1);
        {
            let (fine, coarse) = self.levels.split_at_mut(lvl + 1);
            let fine = &mut fine[lvl];
            let coarse = &coarse[0];
            fine.p
                .as_ref()
                .expect("non-coarsest has P")
                .spmv(&coarse.x, &mut fine.tmp);
            for i in 0..fine.x.len() {
                fine.x[i] += fine.tmp[i];
            }
            Self::smooth(fine, sweeps, w);
        }
    }

    /// One V-cycle applied to `b`, writing the correction into `x`.
    pub fn apply_vcycle(&mut self, b: &[f64], x: &mut [f64]) {
        self.levels[0].b.copy_from_slice(b);
        self.levels[0].x.fill(0.0);
        self.vcycle(0);
        x.copy_from_slice(&self.levels[0].x);
    }

    /// Solve `A x = b` by stationary V-cycle iteration.
    pub fn solve(
        &mut self,
        b: &[f64],
        x: &mut [f64],
        tol: f64,
        max_cycles: usize,
    ) -> linalg::IterStats {
        let n = b.len();
        let mut r = vec![0.0; n];
        let mut z = vec![0.0; n];
        let bnorm = linalg::norm2(b).max(1e-300);
        for it in 0..max_cycles {
            // r = b - A x (on the fine level's matrix).
            self.levels[0].a.spmv(x, &mut r);
            for i in 0..n {
                r[i] = b[i] - r[i];
            }
            let rel = linalg::norm2(&r) / bnorm;
            if rel < tol {
                return linalg::IterStats {
                    iterations: it,
                    residual: rel,
                    converged: true,
                };
            }
            self.apply_vcycle(&r, &mut z);
            for i in 0..n {
                x[i] += z[i];
            }
        }
        self.levels[0].a.spmv(x, &mut r);
        for i in 0..n {
            r[i] = b[i] - r[i];
        }
        let rel = linalg::norm2(&r) / bnorm;
        linalg::IterStats {
            iterations: max_cycles,
            residual: rel,
            converged: rel < tol,
        }
    }

    /// Asymptotic per-cycle residual-reduction factor, measured over
    /// `cycles` V-cycles on a zero-RHS problem with random-ish start.
    pub fn convergence_factor(&mut self, cycles: usize) -> f64 {
        let n = self.levels[0].a.rows;
        let mut x: Vec<f64> = (0..n)
            .map(|i| ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5)
            .collect();
        let mut r = vec![0.0; n];
        let mut z = vec![0.0; n];
        let mut prev = {
            self.levels[0].a.spmv(&x, &mut r);
            linalg::norm2(&r)
        };
        let mut factor: f64 = 0.0;
        for _ in 0..cycles {
            self.levels[0].a.spmv(&x, &mut r);
            for ri in r.iter_mut() {
                *ri = -*ri;
            }
            self.apply_vcycle(&r, &mut z);
            for i in 0..n {
                x[i] += z[i];
            }
            self.levels[0].a.spmv(&x, &mut r);
            let now = linalg::norm2(&r);
            if prev > 1e-300 {
                factor = now / prev;
            }
            prev = now;
        }
        factor
    }

    /// Charge one V-cycle's solve-phase work to `sim` on `target` and
    /// return the simulated seconds. Mirrors the §4.10.1 port: the solve
    /// phase is SpMV + vector ops (cuSPARSE on device); every matrix/vector
    /// is assumed device-resident via unified memory.
    pub fn cycle_cost(&self, sim: &mut Sim, target: Target) -> f64 {
        let mut total = 0.0;
        for (li, level) in self.levels.iter().enumerate() {
            let nnz = level.a.nnz() as f64;
            let n = level.a.rows as f64;
            // Two smoothing sweeps + residual: 3 SpMVs; plus P/R SpMVs.
            let spmv_flops = 2.0 * nnz;
            let spmv_bytes = 12.0 * nnz + 8.0 * 2.0 * n;
            let sweeps = (2 * self.opts.sweeps + 1) as f64;
            let k = KernelProfile::new(format!("amg-spmv-l{li}"))
                .flops(spmv_flops * sweeps)
                .bytes_read(spmv_bytes * sweeps)
                .bytes_written(8.0 * n * sweeps)
                .parallelism(n);
            total += sim.launch(target, &k);
            if let Some(p) = &level.p {
                let pn = p.nnz() as f64;
                let k = KernelProfile::new(format!("amg-transfer-l{li}"))
                    .flops(4.0 * pn)
                    .bytes_read(24.0 * pn)
                    .bytes_written(16.0 * n)
                    .parallelism(n);
                total += sim.launch(target, &k);
            }
        }
        total
    }
}

impl Preconditioner for BoomerAmg {
    fn apply(&mut self, r: &[f64], z: &mut [f64]) {
        self.apply_vcycle(r, z);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::cg;

    fn poisson(nx: usize) -> CsrMatrix {
        CsrMatrix::laplace2d(nx, nx)
    }

    #[test]
    fn setup_builds_multiple_levels() {
        let amg = BoomerAmg::setup(poisson(32), AmgOptions::default());
        assert!(amg.num_levels() >= 3, "{}", amg.num_levels());
        let s = amg.stats();
        assert!(s.grid_complexity < 2.5, "{s:?}");
        assert!(s.operator_complexity < 5.0, "{s:?}");
    }

    #[test]
    fn vcycle_reduces_residual_fast() {
        let mut amg = BoomerAmg::setup(poisson(32), AmgOptions::default());
        let f = amg.convergence_factor(8);
        assert!(f < 0.5, "convergence factor {f}");
    }

    #[test]
    fn solve_converges_on_poisson() {
        let a = poisson(24);
        let n = a.rows;
        let expect: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) * 0.1).collect();
        let mut b = vec![0.0; n];
        a.spmv(&expect, &mut b);
        let mut amg = BoomerAmg::setup(a, AmgOptions::default());
        let mut x = vec![0.0; n];
        let s = amg.solve(&b, &mut x, 1e-8, 100);
        assert!(s.converged, "{s:?}");
        let err = x
            .iter()
            .zip(&expect)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-5, "{err}");
    }

    #[test]
    fn amg_preconditioned_cg_beats_plain_cg() {
        let a = poisson(48);
        let n = a.rows;
        let b = vec![1.0; n];
        let mut x1 = vec![0.0; n];
        let plain = cg(
            &a,
            &b,
            &mut x1,
            &mut linalg::krylov::IdentityPrecond,
            1e-8,
            10_000,
        );
        let mut amg = BoomerAmg::setup(a, AmgOptions::default());
        let mut x2 = vec![0.0; n];
        let fine = {
            // Need the matrix again for CG; rebuild.
            CsrMatrix::laplace2d(48, 48)
        };
        let pre = cg(&fine, &b, &mut x2, &mut amg, 1e-8, 10_000);
        assert!(pre.converged);
        assert!(
            pre.iterations * 4 < plain.iterations,
            "AMG-CG {} vs CG {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn solve_phase_faster_on_gpu() {
        // The point of the §4.10.1 port: the SpMV-dominated solve phase is
        // bandwidth-bound and belongs on HBM.
        use hetsim::machines;
        let amg = BoomerAmg::setup(poisson(256), AmgOptions::default());
        let mut sim = Sim::new(machines::sierra_node());
        let tc = amg.cycle_cost(&mut sim, Target::cpu(1));
        let tg = amg.cycle_cost(&mut sim, Target::gpu(0));
        assert!(tc / tg > 3.0, "{}", tc / tg);
    }

    #[test]
    fn coarsest_level_is_small() {
        let amg = BoomerAmg::setup(poisson(40), AmgOptions::default());
        let last = amg.levels.last().expect("at least one level");
        assert!(last.a.rows <= AmgOptions::default().coarse_size);
    }
}
