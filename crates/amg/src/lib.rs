//! `amg` — the *hypre* stand-in (§4.10.1).
//!
//! hypre gave the iCoE two solver families, and this crate reproduces both
//! along with the porting decisions the paper describes:
//!
//! * [`boomer`] — **BoomerAMG**, the unstructured algebraic-multigrid
//!   solver. The *setup* phase (strength-of-connection, coarsening,
//!   interpolation, Galerkin products) "consists of complicated components"
//!   and **stays on the CPU**; the *solve* phase "can completely be
//!   performed in terms of matrix-vector multiplications" and is what got
//!   ported to the device. [`boomer::BoomerAmg::solve_cost`] charges
//!   exactly that split to a [`hetsim::Sim`].
//! * [`structured`] — the structured (PFMG-style) solver whose kernels are
//!   "abstracted with macros called BoxLoops ... completely restructured to
//!   allow ports of CUDA, OpenMP 4.5, RAJA and Kokkos into the isolated
//!   BoxLoops". Our [`structured::BoxLoop`] is that isolation layer: the
//!   same red-black Gauss-Seidel and transfer kernels run under any
//!   [`portal::Policy`].
//!
//! BoomerAMG implements [`linalg::Preconditioner`], so it drops into the
//! Krylov solvers the same way hypre drops into MFEM and SUNDIALS (§4.10.4):
//!
//! ```
//! use amg::{AmgOptions, BoomerAmg};
//! use linalg::{cg, CsrMatrix};
//!
//! let a = CsrMatrix::laplace2d(32, 32);
//! let b = vec![1.0; a.rows];
//! let mut x = vec![0.0; a.rows];
//! let mut precond = BoomerAmg::setup(a.clone(), AmgOptions::default());
//! let stats = cg(&a, &b, &mut x, &mut precond, 1e-8, 100);
//! assert!(stats.converged && stats.iterations < 20);
//! ```

pub mod boomer;
pub mod structured;

pub use boomer::{AmgOptions, BoomerAmg, CycleStats};
pub use structured::{BoxLoop, StructGrid, StructSolver};
