//! The structured solver path: BoxLoops and a PFMG-style geometric
//! multigrid.
//!
//! §4.10.1: "The structured solvers exploit problem structure and are
//! abstracted with macros called BoxLoops. These macros were completely
//! restructured to allow ports of CUDA, OpenMP 4.5, RAJA and Kokkos into
//! the isolated BoxLoops." [`BoxLoop`] is that isolation layer here: every
//! structured kernel below funnels through it, so switching the
//! [`portal::Policy`] switches where the whole solver runs.

use portal::{Backend, Executor, PerItem, Policy, View2};

/// A 2-D index box (hypre `Box` analogue) with the loop machinery attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoxLoop {
    pub nx: usize,
    pub ny: usize,
}

impl BoxLoop {
    pub fn new(nx: usize, ny: usize) -> BoxLoop {
        BoxLoop { nx, ny }
    }

    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Run `f(i, j, &mut out[idx])` over the interior of the box under
    /// `policy`, charging `exec`'s simulator. This is the isolated BoxLoop
    /// every structured kernel goes through.
    pub fn run_interior<F>(
        &self,
        exec: &mut Executor,
        policy: Policy,
        backend: Backend,
        item: &PerItem,
        out: &mut [f64],
        f: F,
    ) -> f64
    where
        F: Fn(usize, usize, &mut f64) + Sync,
    {
        let v = View2::new(self.nx, self.ny);
        debug_assert_eq!(out.len(), v.len());
        let ny = self.ny;
        exec.forall_mut(policy, backend, item, out, move |idx, slot| {
            let i = idx / ny;
            let j = idx % ny;
            if i > 0 && i + 1 < v.ni && j > 0 && j + 1 < v.nj {
                f(i, j, slot);
            }
        })
    }
}

/// A structured grid holding one scalar field with Dirichlet boundary.
#[derive(Debug, Clone)]
pub struct StructGrid {
    pub nx: usize,
    pub ny: usize,
    pub data: Vec<f64>,
}

impl StructGrid {
    pub fn zeros(nx: usize, ny: usize) -> StructGrid {
        StructGrid {
            nx,
            ny,
            data: vec![0.0; nx * ny],
        }
    }

    pub fn view(&self) -> View2 {
        View2::new(self.nx, self.ny)
    }

    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.ny + j]
    }

    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.ny + j] = v;
    }
}

/// PFMG-style structured solver for the 5-point Poisson problem: red-black
/// Gauss-Seidel smoothing on a V-cycle of coarsened grids.
pub struct StructSolver {
    /// Grid sizes per level, finest first; each is (nx, ny).
    sizes: Vec<(usize, usize)>,
    pub policy: Policy,
    pub backend: Backend,
}

impl StructSolver {
    /// Build a hierarchy for an `nx` x `ny` fine grid (sizes must be 2^k+1).
    pub fn new(nx: usize, ny: usize, policy: Policy, backend: Backend) -> StructSolver {
        let mut sizes = vec![(nx, ny)];
        let (mut cx, mut cy) = (nx, ny);
        while cx >= 9 && cy >= 9 && (cx - 1) % 2 == 0 && (cy - 1) % 2 == 0 {
            cx = (cx - 1) / 2 + 1;
            cy = (cy - 1) / 2 + 1;
            sizes.push((cx, cy));
        }
        StructSolver {
            sizes,
            policy,
            backend,
        }
    }

    pub fn levels(&self) -> usize {
        self.sizes.len()
    }

    fn smooth_cost() -> PerItem {
        PerItem::new()
            .flops(6.0)
            .bytes_read(48.0)
            .bytes_written(8.0)
    }

    /// One red-black Gauss-Seidel sweep on level data (h^2-scaled RHS).
    fn rb_sweep(
        exec: &mut Executor,
        policy: Policy,
        backend: Backend,
        u: &mut [f64],
        f: &[f64],
        nx: usize,
        ny: usize,
        h2: f64,
    ) -> f64 {
        let mut t = 0.0;
        for colour in 0..2usize {
            let snapshot = u.to_vec();
            let b = BoxLoop::new(nx, ny);
            t += b.run_interior(
                exec,
                policy,
                backend,
                &Self::smooth_cost(),
                u,
                |i, j, slot| {
                    if (i + j) % 2 == colour {
                        let s = snapshot[(i - 1) * ny + j]
                            + snapshot[(i + 1) * ny + j]
                            + snapshot[i * ny + j - 1]
                            + snapshot[i * ny + j + 1];
                        *slot = 0.25 * (s + h2 * f[i * ny + j]);
                    }
                },
            );
        }
        t
    }

    fn residual(
        exec: &mut Executor,
        policy: Policy,
        backend: Backend,
        u: &[f64],
        f: &[f64],
        r: &mut [f64],
        nx: usize,
        ny: usize,
        h2: f64,
    ) -> f64 {
        let b = BoxLoop::new(nx, ny);
        r.fill(0.0);
        let item = PerItem::new()
            .flops(7.0)
            .bytes_read(48.0)
            .bytes_written(8.0);
        b.run_interior(exec, policy, backend, &item, r, |i, j, slot| {
            let lap = 4.0 * u[i * ny + j]
                - u[(i - 1) * ny + j]
                - u[(i + 1) * ny + j]
                - u[i * ny + j - 1]
                - u[i * ny + j + 1];
            *slot = f[i * ny + j] - lap / h2;
        })
    }

    /// V-cycle; returns simulated seconds.
    fn vcycle(
        &self,
        exec: &mut Executor,
        lvl: usize,
        u: &mut Vec<Vec<f64>>,
        f: &mut Vec<Vec<f64>>,
    ) -> f64 {
        let (nx, ny) = self.sizes[lvl];
        let h = 1.0 / (nx.max(ny) as f64 - 1.0);
        let h2 = h * h;
        let mut t = 0.0;
        let (policy, backend) = (self.policy, self.backend);
        if lvl + 1 == self.sizes.len() {
            // Coarsest: many sweeps.
            for _ in 0..50 {
                let (uu, ff) = (&mut u[lvl], &f[lvl]);
                let ffc = ff.clone();
                t += Self::rb_sweep(exec, policy, backend, uu, &ffc, nx, ny, h2);
            }
            return t;
        }
        // Pre-smooth.
        for _ in 0..2 {
            let ffc = f[lvl].clone();
            t += Self::rb_sweep(exec, policy, backend, &mut u[lvl], &ffc, nx, ny, h2);
        }
        // Residual and restriction (full weighting at coarse points).
        let mut r = vec![0.0; nx * ny];
        {
            let ffc = f[lvl].clone();
            t += Self::residual(exec, policy, backend, &u[lvl], &ffc, &mut r, nx, ny, h2);
        }
        let (cnx, cny) = self.sizes[lvl + 1];
        for ci in 1..cnx - 1 {
            for cj in 1..cny - 1 {
                let (i, j) = (2 * ci, 2 * cj);
                let fw = 0.25 * r[i * ny + j]
                    + 0.125
                        * (r[(i - 1) * ny + j]
                            + r[(i + 1) * ny + j]
                            + r[i * ny + j - 1]
                            + r[i * ny + j + 1])
                    + 0.0625
                        * (r[(i - 1) * ny + j - 1]
                            + r[(i - 1) * ny + j + 1]
                            + r[(i + 1) * ny + j - 1]
                            + r[(i + 1) * ny + j + 1]);
                f[lvl + 1][ci * cny + cj] = fw;
            }
        }
        u[lvl + 1].fill(0.0);
        t += self.vcycle(exec, lvl + 1, u, f);
        // Prolongate (bilinear) and correct.
        let coarse = u[lvl + 1].clone();
        let fine = &mut u[lvl];
        for ci in 0..cnx - 1 {
            for cj in 0..cny - 1 {
                let c00 = coarse[ci * cny + cj];
                let c10 = coarse[(ci + 1) * cny + cj];
                let c01 = coarse[ci * cny + cj + 1];
                let c11 = coarse[(ci + 1) * cny + cj + 1];
                let (i, j) = (2 * ci, 2 * cj);
                fine[i * ny + j] += c00;
                if i + 1 < nx {
                    fine[(i + 1) * ny + j] += 0.5 * (c00 + c10);
                }
                if j + 1 < ny {
                    fine[i * ny + j + 1] += 0.5 * (c00 + c01);
                }
                if i + 1 < nx && j + 1 < ny {
                    fine[(i + 1) * ny + j + 1] += 0.25 * (c00 + c10 + c01 + c11);
                }
            }
        }
        // Post-smooth.
        for _ in 0..2 {
            let ffc = f[lvl].clone();
            t += Self::rb_sweep(exec, policy, backend, &mut u[lvl], &ffc, nx, ny, h2);
        }
        t
    }

    /// Solve `-lap u = f` with homogeneous Dirichlet boundary on the unit
    /// square. Returns (cycles used, final residual norm, simulated
    /// seconds).
    pub fn solve(
        &self,
        exec: &mut Executor,
        f_rhs: &StructGrid,
        u_out: &mut StructGrid,
        tol: f64,
        max_cycles: usize,
    ) -> (usize, f64, f64) {
        assert_eq!((f_rhs.nx, f_rhs.ny), self.sizes[0]);
        let mut u: Vec<Vec<f64>> = self.sizes.iter().map(|&(x, y)| vec![0.0; x * y]).collect();
        let mut f: Vec<Vec<f64>> = self.sizes.iter().map(|&(x, y)| vec![0.0; x * y]).collect();
        f[0].copy_from_slice(&f_rhs.data);
        let (nx, ny) = self.sizes[0];
        let h = 1.0 / (nx.max(ny) as f64 - 1.0);
        let h2 = h * h;
        let mut sim_t = 0.0;
        let mut res = f64::INFINITY;
        let mut cycles = 0;
        let mut r = vec![0.0; nx * ny];
        for c in 0..max_cycles {
            sim_t += self.vcycle(exec, 0, &mut u, &mut f);
            let ffc = f[0].clone();
            sim_t += Self::residual(
                exec,
                self.policy,
                self.backend,
                &u[0],
                &ffc,
                &mut r,
                nx,
                ny,
                h2,
            );
            res = r.iter().map(|v| v * v).sum::<f64>().sqrt();
            cycles = c + 1;
            if res < tol {
                break;
            }
        }
        u_out.data.copy_from_slice(&u[0]);
        (cycles, res, sim_t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::{machines, Sim};

    fn exec() -> Executor {
        Executor::new(Sim::new(machines::sierra_node()))
    }

    fn manufactured(nx: usize, ny: usize) -> (StructGrid, StructGrid) {
        // u = sin(pi x) sin(pi y), f = 2 pi^2 u.
        use std::f64::consts::PI;
        let mut f = StructGrid::zeros(nx, ny);
        let mut uex = StructGrid::zeros(nx, ny);
        for i in 0..nx {
            for j in 0..ny {
                let x = i as f64 / (nx - 1) as f64;
                let y = j as f64 / (ny - 1) as f64;
                let u = (PI * x).sin() * (PI * y).sin();
                uex.set(i, j, u);
                f.set(i, j, 2.0 * PI * PI * u);
            }
        }
        (f, uex)
    }

    #[test]
    fn hierarchy_depth() {
        let s = StructSolver::new(65, 65, Policy::Seq, Backend::Native);
        assert!(s.levels() >= 3);
    }

    #[test]
    fn solves_manufactured_poisson() {
        let n = 33;
        let (f, uex) = manufactured(n, n);
        let s = StructSolver::new(n, n, Policy::Threads(4), Backend::Native);
        let mut e = exec();
        let mut u = StructGrid::zeros(n, n);
        let (cycles, res, _) = s.solve(&mut e, &f, &mut u, 1e-8, 60);
        assert!(res < 1e-8, "res {res} after {cycles}");
        // Discretisation error ~ h^2.
        let mut max_err = 0.0f64;
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                max_err = max_err.max((u.at(i, j) - uex.at(i, j)).abs());
            }
        }
        assert!(max_err < 5e-3, "{max_err}");
    }

    #[test]
    fn multigrid_converges_in_few_cycles() {
        let n = 65;
        let (f, _) = manufactured(n, n);
        let s = StructSolver::new(n, n, Policy::Seq, Backend::Native);
        let mut e = exec();
        let mut u = StructGrid::zeros(n, n);
        let (cycles, res, _) = s.solve(&mut e, &f, &mut u, 1e-7, 60);
        assert!(res < 1e-7);
        assert!(cycles <= 15, "multigrid took {cycles} cycles");
    }

    #[test]
    fn boxloop_policy_switch_changes_cost_not_answer() {
        // The restructured-BoxLoop claim: same kernels, different backend.
        let n = 33;
        let (f, _) = manufactured(n, n);
        let mut u_cpu = StructGrid::zeros(n, n);
        let mut u_gpu = StructGrid::zeros(n, n);
        let s_cpu = StructSolver::new(n, n, Policy::Seq, Backend::Native);
        let s_gpu = StructSolver::new(n, n, Policy::device(0), Backend::Portal);
        let mut e1 = exec();
        let mut e2 = exec();
        s_cpu.solve(&mut e1, &f, &mut u_cpu, 1e-8, 40);
        s_gpu.solve(&mut e2, &f, &mut u_gpu, 1e-8, 40);
        for (a, b) in u_cpu.data.iter().zip(&u_gpu.data) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn small_structured_grids_prefer_cpu() {
        // Launch overhead dominates tiny boxes — the ParaDyn/hypre lesson.
        let n = 17;
        let (f, _) = manufactured(n, n);
        let mut u = StructGrid::zeros(n, n);
        let s_gpu = StructSolver::new(n, n, Policy::device(0), Backend::Native);
        let s_cpu = StructSolver::new(n, n, Policy::Threads(8), Backend::Native);
        let mut e1 = exec();
        let (_, _, t_gpu) = s_gpu.solve(&mut e1, &f, &mut u, 1e-8, 30);
        let mut e2 = exec();
        let (_, _, t_cpu) = s_cpu.solve(&mut e2, &f, &mut u, 1e-8, 30);
        assert!(t_gpu > t_cpu, "gpu {t_gpu} cpu {t_cpu}");
    }
}
