//! Distributed LDA on the dataflow engine — the Fig 2 experiment.
//!
//! Per EM iteration, exactly SparkPlug's dataflow: broadcast the topic
//! matrix, E-step over document partitions (compute), shuffle the sparse
//! sufficient statistics by word (all-to-all), aggregate the word-topic
//! count matrix to the driver (all-to-one), M-step.

use dataflow::{Dataset, PhaseTimes, StackConfig};
use hetsim::Machine;

use crate::corpus::Corpus;
use crate::vem::LdaModel;

/// Outcome of a distributed run.
#[derive(Debug, Clone)]
pub struct LdaRunReport {
    pub stack: &'static str,
    pub nodes: usize,
    pub iterations: usize,
    pub times: PhaseTimes,
    pub final_bound: f64,
    pub model: LdaModel,
}

/// Run `iterations` of distributed variational EM on `machine` with
/// `stack`; the math is bit-identical regardless of stack (only the clock
/// differs).
pub fn run_distributed(
    corpus: &Corpus,
    machine: &Machine,
    stack: StackConfig,
    n_topics: usize,
    iterations: usize,
    inner_iters: usize,
) -> LdaRunReport {
    let vocab = corpus.params.vocab;
    let mut model = LdaModel::init(n_topics, vocab, 0.1, 42);
    let mut ds = Dataset::distribute(corpus.docs.clone(), machine, stack);
    let beta_bytes = (n_topics * vocab * 8) as f64;
    let mut bound = 0.0;

    // Per-token E-step flops: inner_iters * (digamma + exp + products).
    let mean_doc_len =
        corpus.docs.iter().map(|d| d.len()).sum::<usize>() as f64 / corpus.docs.len().max(1) as f64;
    let flops_per_doc = inner_iters as f64 * mean_doc_len * n_topics as f64 * 40.0;

    for _ in 0..iterations {
        // Broadcast beta.
        ds.charge_broadcast(beta_bytes);
        // E-step (compute) + sufficient statistics.
        let m = &model;
        let estep = |doc: &Vec<(usize, f64)>| m.e_step_doc(doc, inner_iters);
        // Charge compute; run for real on each partition.
        let mut counts = vec![vec![0.0; vocab]; n_topics];
        bound = 0.0;
        let mut stat_entries = 0usize;
        for p in &ds.partitions {
            for doc in p {
                let r = estep(doc);
                stat_entries += r.stats.len();
                for (w, t, c) in r.stats {
                    counts[t][w] += c;
                }
                bound += r.log_likelihood_bound;
            }
        }
        let n_docs = ds.len() as f64;
        // Ledger: compute, shuffle of stats by word, aggregate of counts.
        let compute_flops = flops_per_doc * n_docs;
        ds.charge_compute_flops(compute_flops);
        let stat_bytes_per_rank = stat_entries as f64 * 24.0 / ds.num_partitions() as f64;
        ds.charge_shuffle(stat_bytes_per_rank);
        let _ = ds.aggregate(0.0f64, beta_bytes, |a, _| a, |a, b| a + b);
        model.m_step(&counts);
    }

    LdaRunReport {
        stack: ds.stack.name,
        nodes: machine.nodes,
        iterations,
        times: ds.times,
        final_bound: bound,
        model,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusParams;
    use hetsim::machines;

    fn small_corpus() -> Corpus {
        Corpus::generate(
            CorpusParams {
                n_docs: 64,
                vocab: 120,
                n_topics: 3,
                words_per_doc: 40,
                zipf_s: 1.1,
            },
            21,
        )
    }

    #[test]
    fn distributed_run_produces_breakdown() {
        let c = small_corpus();
        let m = machines::sierra_nodes(8);
        let r = run_distributed(&c, &m, StackConfig::default_stack(), 3, 3, 4);
        assert!(r.times.compute > 0.0);
        assert!(r.times.shuffle > 0.0);
        assert!(r.times.aggregate > 0.0);
        assert!(r.times.broadcast > 0.0);
        assert!(r.final_bound.is_finite());
    }

    #[test]
    fn optimized_stack_is_at_least_2x_faster_at_32_nodes() {
        // The Fig 2 headline: "more than 2X over the default stack".
        let c = small_corpus();
        let m = machines::sierra_nodes(32);
        let slow = run_distributed(&c, &m, StackConfig::default_stack(), 3, 3, 4);
        let fast = run_distributed(&c, &m, StackConfig::optimized_stack(), 3, 3, 4);
        let speedup = slow.times.total() / fast.times.total();
        assert!(
            speedup > 2.0,
            "speedup {speedup} ({:?} vs {:?})",
            slow.times,
            fast.times
        );
    }

    #[test]
    fn both_stacks_compute_identical_models() {
        let c = small_corpus();
        let m = machines::sierra_nodes(8);
        let a = run_distributed(&c, &m, StackConfig::default_stack(), 3, 4, 4);
        let b = run_distributed(&c, &m, StackConfig::optimized_stack(), 3, 4, 4);
        assert!((a.final_bound - b.final_bound).abs() < 1e-9);
        for (ra, rb) in a.model.beta.iter().zip(&b.model.beta) {
            for (x, y) in ra.iter().zip(rb) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn distributed_matches_serial_model() {
        let c = small_corpus();
        let m = machines::sierra_nodes(4);
        let dist = run_distributed(&c, &m, StackConfig::default_stack(), 3, 3, 4);
        let mut serial = LdaModel::init(3, c.params.vocab, 0.1, 42);
        let mut bound = 0.0;
        for _ in 0..3 {
            bound = serial.em_iteration(&c, 4);
        }
        assert!(
            (dist.final_bound - bound).abs() < 1e-9,
            "{} vs {bound}",
            dist.final_bound
        );
    }

    #[test]
    fn scaling_out_reduces_compute_time() {
        let c = small_corpus();
        let r8 = run_distributed(
            &c,
            &machines::sierra_nodes(8),
            StackConfig::optimized_stack(),
            3,
            2,
            4,
        );
        let r32 = run_distributed(
            &c,
            &machines::sierra_nodes(32),
            StackConfig::optimized_stack(),
            3,
            2,
            4,
        );
        assert!(r32.times.compute < r8.times.compute);
    }
}
