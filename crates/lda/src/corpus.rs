//! Synthetic corpora with known topic structure.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Corpus generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusParams {
    pub n_docs: usize,
    pub vocab: usize,
    pub n_topics: usize,
    pub words_per_doc: usize,
    /// Zipf exponent of the within-topic word distribution.
    pub zipf_s: f64,
}

impl Default for CorpusParams {
    fn default() -> Self {
        CorpusParams {
            n_docs: 200,
            vocab: 400,
            n_topics: 4,
            words_per_doc: 80,
            zipf_s: 1.1,
        }
    }
}

/// A document: sparse bag of words as (word id, count).
pub type Doc = Vec<(usize, f64)>;

/// A generated corpus plus its ground truth.
#[derive(Debug, Clone)]
pub struct Corpus {
    pub docs: Vec<Doc>,
    pub params: CorpusParams,
    /// True topic-word distributions, `n_topics x vocab`, rows normalised.
    pub true_topics: Vec<Vec<f64>>,
    /// True document-topic proportions.
    pub true_theta: Vec<Vec<f64>>,
}

/// Draw from a discrete distribution.
fn sample(rng: &mut SmallRng, probs: &[f64]) -> usize {
    let mut r: f64 = rng.gen::<f64>() * probs.iter().sum::<f64>();
    for (i, &p) in probs.iter().enumerate() {
        r -= p;
        if r <= 0.0 {
            return i;
        }
    }
    probs.len() - 1
}

impl Corpus {
    /// Generate a corpus; deterministic in `seed`. Topics occupy disjoint
    /// Zipf-weighted vocabulary bands (well separated, so recovery is
    /// testable); each document mixes 1-2 dominant topics.
    pub fn generate(params: CorpusParams, seed: u64) -> Corpus {
        let mut rng = SmallRng::seed_from_u64(seed);
        let band = params.vocab / params.n_topics;
        let mut true_topics = Vec::with_capacity(params.n_topics);
        for k in 0..params.n_topics {
            let mut row = vec![1e-6; params.vocab];
            for w in 0..band {
                row[k * band + w] = 1.0 / ((w + 1) as f64).powf(params.zipf_s);
            }
            let z: f64 = row.iter().sum();
            for v in row.iter_mut() {
                *v /= z;
            }
            true_topics.push(row);
        }
        let mut docs = Vec::with_capacity(params.n_docs);
        let mut true_theta = Vec::with_capacity(params.n_docs);
        for _ in 0..params.n_docs {
            let k1 = rng.gen_range(0..params.n_topics);
            let k2 = rng.gen_range(0..params.n_topics);
            let w1: f64 = rng.gen_range(0.6..1.0);
            let mut theta = vec![0.0; params.n_topics];
            theta[k1] += w1;
            theta[k2] += 1.0 - w1;
            let mut counts = vec![0.0f64; params.vocab];
            for _ in 0..params.words_per_doc {
                let k = if rng.gen::<f64>() < theta[k1] { k1 } else { k2 };
                let w = sample(&mut rng, &true_topics[k]);
                counts[w] += 1.0;
            }
            let doc: Doc = counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0.0)
                .map(|(w, &c)| (w, c))
                .collect();
            docs.push(doc);
            true_theta.push(theta);
        }
        Corpus {
            docs,
            params,
            true_topics,
            true_theta,
        }
    }

    /// Total token count.
    pub fn tokens(&self) -> f64 {
        self.docs
            .iter()
            .flat_map(|d| d.iter().map(|(_, c)| c))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_requested_shape() {
        let c = Corpus::generate(CorpusParams::default(), 1);
        assert_eq!(c.docs.len(), 200);
        assert_eq!(c.true_topics.len(), 4);
        assert!((c.tokens() - 200.0 * 80.0).abs() < 1e-9);
    }

    #[test]
    fn topics_are_normalised_and_disjointish() {
        let c = Corpus::generate(CorpusParams::default(), 2);
        for row in &c.true_topics {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        // Topic 0's mass lives in its own band.
        let band = 100;
        let in_band: f64 = c.true_topics[0][..band].iter().sum();
        assert!(in_band > 0.99);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(CorpusParams::default(), 9);
        let b = Corpus::generate(CorpusParams::default(), 9);
        assert_eq!(a.docs, b.docs);
    }

    #[test]
    fn zipf_makes_head_words_common() {
        let c = Corpus::generate(CorpusParams::default(), 3);
        // Word 0 (head of topic 0's band) appears more than word 50.
        let count = |w: usize| -> f64 {
            c.docs
                .iter()
                .flat_map(|d| d.iter().filter(move |(id, _)| *id == w).map(|(_, c)| c))
                .sum()
        };
        assert!(count(0) > count(50));
    }
}
