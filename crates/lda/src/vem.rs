//! Variational EM for LDA (the SparkPlug algorithm).
//!
//! Standard Blei-Ng-Jordan mean-field updates: per document, iterate
//! `phi_wk ~ beta_kw * exp(digamma(gamma_k))`, `gamma_k = alpha + sum_w
//! n_w phi_wk`; the M-step re-estimates `beta` from the expected counts.

use crate::corpus::{Corpus, Doc};

/// Digamma via the standard shift + asymptotic series.
pub fn digamma(mut x: f64) -> f64 {
    let mut acc = 0.0;
    while x < 10.0 {
        acc -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    acc + x.ln() - 0.5 * inv - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0))
}

/// The LDA model state.
#[derive(Debug, Clone)]
pub struct LdaModel {
    pub n_topics: usize,
    pub vocab: usize,
    pub alpha: f64,
    /// Topic-word distributions, rows normalised.
    pub beta: Vec<Vec<f64>>,
}

/// Per-document E-step output: variational `gamma` and the expected
/// word-topic counts contribution.
pub struct EStepResult {
    pub gamma: Vec<f64>,
    /// Sparse sufficient statistics: (word, topic, expected count).
    pub stats: Vec<(usize, usize, f64)>,
    pub log_likelihood_bound: f64,
}

impl LdaModel {
    /// Deterministic "random" initialisation.
    pub fn init(n_topics: usize, vocab: usize, alpha: f64, seed: u64) -> LdaModel {
        let mut beta = Vec::with_capacity(n_topics);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for _ in 0..n_topics {
            let mut row = Vec::with_capacity(vocab);
            let mut z = 0.0;
            for _ in 0..vocab {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = 0.5 + (state >> 33) as f64 / (1u64 << 31) as f64;
                row.push(v);
                z += v;
            }
            for v in row.iter_mut() {
                *v /= z;
            }
            beta.push(row);
        }
        LdaModel {
            n_topics,
            vocab,
            alpha,
            beta,
        }
    }

    /// One document's variational E-step.
    pub fn e_step_doc(&self, doc: &Doc, inner_iters: usize) -> EStepResult {
        let k = self.n_topics;
        let total: f64 = doc.iter().map(|(_, c)| c).sum();
        let mut gamma = vec![self.alpha + total / k as f64; k];
        let mut phi = vec![vec![1.0 / k as f64; k]; doc.len()];
        for _ in 0..inner_iters {
            let dig: Vec<f64> = gamma.iter().map(|&g| digamma(g)).collect();
            let mut new_gamma = vec![self.alpha; k];
            for (wi, &(w, count)) in doc.iter().enumerate() {
                let mut z = 0.0;
                for t in 0..k {
                    let v = self.beta[t][w].max(1e-12) * dig[t].exp();
                    phi[wi][t] = v;
                    z += v;
                }
                for t in 0..k {
                    phi[wi][t] /= z;
                    new_gamma[t] += count * phi[wi][t];
                }
            }
            gamma = new_gamma;
        }
        let mut stats = Vec::with_capacity(doc.len() * k);
        let mut bound = 0.0;
        for (wi, &(w, count)) in doc.iter().enumerate() {
            let mut word_prob = 0.0;
            let gsum: f64 = gamma.iter().sum();
            for t in 0..k {
                stats.push((w, t, count * phi[wi][t]));
                word_prob += (gamma[t] / gsum) * self.beta[t][w].max(1e-12);
            }
            bound += count * word_prob.max(1e-300).ln();
        }
        EStepResult {
            gamma,
            stats,
            log_likelihood_bound: bound,
        }
    }

    /// M-step: rebuild `beta` from accumulated expected counts
    /// (`counts[topic][word]`), with a small smoothing prior.
    pub fn m_step(&mut self, counts: &[Vec<f64>]) {
        for t in 0..self.n_topics {
            let z: f64 = counts[t].iter().sum::<f64>() + 1e-3 * self.vocab as f64;
            for w in 0..self.vocab {
                self.beta[t][w] = (counts[t][w] + 1e-3) / z;
            }
        }
    }

    /// One full (serial) EM iteration over the corpus; returns the
    /// log-likelihood bound.
    pub fn em_iteration(&mut self, corpus: &Corpus, inner_iters: usize) -> f64 {
        let mut counts = vec![vec![0.0; self.vocab]; self.n_topics];
        let mut bound = 0.0;
        for doc in &corpus.docs {
            let r = self.e_step_doc(doc, inner_iters);
            for (w, t, c) in r.stats {
                counts[t][w] += c;
            }
            bound += r.log_likelihood_bound;
        }
        self.m_step(&counts);
        bound
    }

    /// Greedy-match learned topics to true ones; returns the mean cosine
    /// similarity of matched pairs.
    pub fn topic_recovery(&self, truth: &[Vec<f64>]) -> f64 {
        let cos = |a: &[f64], b: &[f64]| {
            let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
            let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
            dot / (na * nb).max(1e-300)
        };
        let mut used = vec![false; self.n_topics];
        let mut total = 0.0;
        for t in truth {
            let mut best = (0usize, -1.0f64);
            for (k, row) in self.beta.iter().enumerate() {
                if used[k] {
                    continue;
                }
                let c = cos(t, row);
                if c > best.1 {
                    best = (k, c);
                }
            }
            used[best.0] = true;
            total += best.1;
        }
        total / truth.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusParams;

    #[test]
    fn digamma_matches_known_values() {
        // psi(1) = -gamma_E; psi(2) = 1 - gamma_E.
        let gamma_e = 0.5772156649015329;
        assert!((digamma(1.0) + gamma_e).abs() < 1e-10);
        assert!((digamma(2.0) - (1.0 - gamma_e)).abs() < 1e-10);
        // Recurrence: psi(x+1) = psi(x) + 1/x.
        for x in [0.3, 1.7, 5.5, 12.0] {
            assert!((digamma(x + 1.0) - digamma(x) - 1.0 / x).abs() < 1e-10);
        }
    }

    #[test]
    fn beta_rows_stay_normalised() {
        let c = Corpus::generate(CorpusParams::default(), 5);
        let mut m = LdaModel::init(4, c.params.vocab, 0.1, 3);
        m.em_iteration(&c, 5);
        for row in &m.beta {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn likelihood_bound_improves() {
        let c = Corpus::generate(CorpusParams::default(), 6);
        let mut m = LdaModel::init(4, c.params.vocab, 0.1, 11);
        let b1 = m.em_iteration(&c, 5);
        let mut last = b1;
        for _ in 0..6 {
            last = m.em_iteration(&c, 5);
        }
        assert!(last > b1, "bound did not improve: {b1} -> {last}");
    }

    #[test]
    fn recovers_planted_topics() {
        let c = Corpus::generate(CorpusParams::default(), 7);
        let mut m = LdaModel::init(4, c.params.vocab, 0.1, 13);
        for _ in 0..20 {
            m.em_iteration(&c, 8);
        }
        let recovery = m.topic_recovery(&c.true_topics);
        assert!(recovery > 0.8, "mean matched cosine {recovery}");
    }

    #[test]
    fn gamma_concentrates_on_dominant_topic() {
        let c = Corpus::generate(CorpusParams::default(), 8);
        let mut m = LdaModel::init(4, c.params.vocab, 0.1, 17);
        for _ in 0..15 {
            m.em_iteration(&c, 8);
        }
        // For most documents the top gamma topic should carry most mass.
        let mut concentrated = 0;
        for doc in &c.docs {
            let r = m.e_step_doc(doc, 10);
            let total: f64 = r.gamma.iter().sum();
            let max = r.gamma.iter().copied().fold(0.0, f64::max);
            if max / total > 0.5 {
                concentrated += 1;
            }
        }
        assert!(
            concentrated * 2 > c.docs.len(),
            "{concentrated}/{}",
            c.docs.len()
        );
    }
}
