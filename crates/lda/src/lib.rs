//! `lda` — the SparkPlug workload (§4.4, Fig 2).
//!
//! SparkPlug is LLNL's density-estimation toolbox on Spark; its variational
//! expectation-maximisation LDA is what the iCoE scaled to the whole
//! Wikipedia corpus (54 M words, 390 languages, 256 nodes). We do not have
//! Wikipedia; [`corpus`] generates Zipf-distributed synthetic corpora from
//! known topic mixtures, which lets tests verify *recovery*, not just
//! throughput. [`vem`] implements variational EM; [`distributed`] runs it
//! on the [`dataflow`] engine and produces the Fig 2 phase breakdown.

pub mod corpus;
pub mod distributed;
pub mod vem;

pub use corpus::{Corpus, CorpusParams};
pub use distributed::{run_distributed, LdaRunReport};
pub use vem::{digamma, LdaModel};
