//! Software-stack descriptions and the phase-time ledger.

use hetsim::{CollectiveKind, Network};

/// Shuffle implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShuffleAlgo {
    /// Stock Spark: hash shuffle with per-partition spill files and full
    /// serialisation of every record.
    Standard,
    /// The iCoE adaptive shuffle (memory-optimised data shuffling,
    /// refs [20, 21]): batches, reuses buffers, and overlaps with compute.
    Adaptive,
}

/// All-to-one aggregation implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateAlgo {
    /// Driver collects from every executor (flat).
    Flat,
    /// Tree aggregation (log-depth).
    Tree,
}

/// A named software stack: which JVM and which algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackConfig {
    pub name: &'static str,
    /// Multiplier on compute time from JVM overheads (GC pauses, lock
    /// contention, boxing). 1.0 = ideal native.
    pub jvm_overhead: f64,
    /// Serialisation cost in seconds per byte moved.
    pub serde_s_per_byte: f64,
    pub shuffle: ShuffleAlgo,
    pub aggregate: AggregateAlgo,
}

impl StackConfig {
    /// Stock open-source Spark on the default JVM.
    pub fn default_stack() -> StackConfig {
        StackConfig {
            name: "default",
            jvm_overhead: 1.65,
            serde_s_per_byte: 1.2e-9,
            shuffle: ShuffleAlgo::Standard,
            aggregate: AggregateAlgo::Flat,
        }
    }

    /// The iCoE-optimised stack: OpenJ9-style JVM + adaptive shuffle +
    /// scalable aggregation.
    pub fn optimized_stack() -> StackConfig {
        StackConfig {
            name: "optimized",
            jvm_overhead: 1.15,
            serde_s_per_byte: 0.35e-9,
            shuffle: ShuffleAlgo::Adaptive,
            aggregate: AggregateAlgo::Tree,
        }
    }

    /// Time to shuffle `bytes_per_rank` over `net`.
    pub fn shuffle_time(&self, net: &Network, bytes_per_rank: f64) -> f64 {
        let serde = 2.0 * bytes_per_rank * self.serde_s_per_byte;
        match self.shuffle {
            // Spill to disk + no overlap: wire and serde serialise, plus a
            // constant-factor penalty for small spill files.
            ShuffleAlgo::Standard => {
                let wire = net.collective(CollectiveKind::AllToAll, bytes_per_rank);
                1.6 * wire + serde
            }
            // Batched, buffer-reusing: the exchange is issued *non-blocking*
            // on the NIC injection tracks and serialisation runs under it —
            // only the slower of the two legs is exposed.
            ShuffleAlgo::Adaptive => {
                let issued_at = net.now();
                let done = net.icollective(CollectiveKind::AllToAll, bytes_per_rank, None);
                (done.time - issued_at).max(serde)
            }
        }
    }

    /// Time to aggregate `bytes_per_rank` to one place over `net`.
    pub fn aggregate_time(&self, net: &Network, bytes_per_rank: f64) -> f64 {
        let serde = bytes_per_rank * self.serde_s_per_byte;
        match self.aggregate {
            AggregateAlgo::Flat => net.collective(CollectiveKind::Reduce, bytes_per_rank) + serde,
            AggregateAlgo::Tree => {
                net.collective(CollectiveKind::TreeReduce, bytes_per_rank) + serde
            }
        }
    }
}

/// Per-phase accumulated simulated seconds (the Fig 2 breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    pub compute: f64,
    pub shuffle: f64,
    pub aggregate: f64,
    pub broadcast: f64,
}

impl PhaseTimes {
    pub fn total(&self) -> f64 {
        self.compute + self.shuffle + self.aggregate + self.broadcast
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::spec::NetworkSpec;

    fn net(ranks: usize) -> Network {
        Network::new(
            NetworkSpec {
                injection_bw_gbs: 25.0,
                latency_us: 1.5,
                gpudirect: false,
            },
            ranks,
        )
    }

    #[test]
    fn optimized_shuffle_is_faster() {
        let n = net(32);
        let d = StackConfig::default_stack();
        let o = StackConfig::optimized_stack();
        let bytes = 256e6;
        assert!(o.shuffle_time(&n, bytes) < 0.5 * d.shuffle_time(&n, bytes));
    }

    #[test]
    fn adaptive_shuffle_is_nonblocking_and_hides_the_faster_leg() {
        let n = net(32);
        let o = StackConfig::optimized_stack();
        let bytes = 256e6;
        let wire = n.collective_cost(CollectiveKind::AllToAll, bytes);
        let serde = 2.0 * bytes * o.serde_s_per_byte;
        let t = o.shuffle_time(&n, bytes);
        // Exposed time == max(wire, serde): the exchange overlapped serde.
        assert!((t - wire.max(serde)).abs() < 1e-9, "{t}");
        // And the exchange actually rode the NIC injection tracks.
        assert!(n.now() > 0.0);
        assert_eq!(n.counters().collectives, 1);
    }

    #[test]
    fn tree_aggregate_scales_better_than_flat() {
        let d = StackConfig::default_stack();
        let o = StackConfig::optimized_stack();
        let bytes = 64e6;
        let t32_flat = d.aggregate_time(&net(32), bytes);
        let t256_flat = d.aggregate_time(&net(256), bytes);
        let t32_tree = o.aggregate_time(&net(32), bytes);
        let t256_tree = o.aggregate_time(&net(256), bytes);
        // Flat blows up ~8x from 32 to 256 ranks; tree grows ~log.
        assert!(t256_flat / t32_flat > 4.0);
        assert!(t256_tree / t32_tree < 2.0);
    }

    #[test]
    fn jvm_overhead_ordering() {
        assert!(
            StackConfig::default_stack().jvm_overhead > StackConfig::optimized_stack().jvm_overhead
        );
    }

    #[test]
    fn phase_total_sums_components() {
        let p = PhaseTimes {
            compute: 1.0,
            shuffle: 2.0,
            aggregate: 3.0,
            broadcast: 0.5,
        };
        assert_eq!(p.total(), 6.5);
    }
}
