//! `dataflow` — the Spark stand-in (§4.4).
//!
//! The Data Analytics team found SparkPlug's LDA bottlenecked on "overheads
//! in the Java Virtual Machine that Spark uses, Spark's implementation of
//! shuffle (all-to-all communication), and Spark's aggregate (all-to-one
//! communication)". Their fixes: IBM JDK/OpenJ9 optimisations (GC, lock
//! contention, serialisation), an adaptive shuffle, and "more scalable
//! all-to-one operations". Together: > 2x (Fig 2).
//!
//! This crate provides a real partitioned-collection engine
//! ([`engine::Dataset`]) whose operations execute eagerly on the host, and
//! a [`stack::StackConfig`] describing which software stack the job runs
//! on. Every operation charges a [`stack::PhaseTimes`] ledger so the Fig 2
//! breakdown can be regenerated.

pub mod broker;
pub mod engine;
pub mod stack;

pub use broker::DataBroker;
pub use engine::Dataset;
pub use stack::{PhaseTimes, ShuffleAlgo, StackConfig};
