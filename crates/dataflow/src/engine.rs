//! The partitioned-collection engine.
//!
//! Eager, in-process execution (data really moves between partitions) with
//! a simulated-time ledger charged against a [`StackConfig`] + machine.

use hetsim::{Machine, Network};

use crate::stack::{PhaseTimes, StackConfig};

/// A partitioned dataset plus the execution context it is bound to.
pub struct Dataset<T> {
    pub partitions: Vec<Vec<T>>,
    pub stack: StackConfig,
    net: Network,
    /// Per-node effective compute rate in elements/second for a unit of
    /// user work (calibrated per op via `work_per_elem`).
    flops_per_s: f64,
    pub times: PhaseTimes,
}

impl<T> Dataset<T> {
    /// Distribute `data` round-robin over `machine.nodes` partitions.
    pub fn distribute(data: Vec<T>, machine: &Machine, stack: StackConfig) -> Dataset<T> {
        let nparts = machine.nodes.max(1);
        let mut partitions: Vec<Vec<T>> = (0..nparts).map(|_| Vec::new()).collect();
        for (i, item) in data.into_iter().enumerate() {
            partitions[i % nparts].push(item);
        }
        let cpu = &machine.node.cpu;
        let flops_per_s = cpu.peak_gflops(cpu.cores()) * 1e9 * cpu.compute_efficiency
            // Spark executors run JIT-ed JVM code, nowhere near peak.
            * 0.05;
        Dataset {
            partitions,
            stack,
            net: Network::new(machine.network.clone(), nparts),
            flops_per_s,
            times: PhaseTimes::default(),
        }
    }

    /// Attach an observability recorder to the dataset's network, so the
    /// shuffles/aggregates of a run land on `nic<r>.inj` timeline tracks and
    /// in the `net.*` counters (builder form).
    pub fn with_recorder(mut self, recorder: hetsim::Recorder) -> Dataset<T> {
        self.net.set_recorder(recorder);
        self
    }

    pub fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    fn charge_compute(&mut self, total_flops: f64) {
        // Slowest partition bounds the stage; assume balanced round-robin
        // so per-node flops = total / nparts.
        let per_node = total_flops / self.num_partitions() as f64;
        self.times.compute += self.stack.jvm_overhead * per_node / self.flops_per_s;
    }

    /// Map every element (`flops_per_elem` charged to the ledger).
    pub fn map<U>(mut self, flops_per_elem: f64, f: impl Fn(&T) -> U) -> Dataset<U> {
        let n = self.len() as f64;
        self.charge_compute(flops_per_elem * n);
        Dataset {
            partitions: self
                .partitions
                .iter()
                .map(|p| p.iter().map(&f).collect())
                .collect(),
            stack: self.stack,
            net: self.net,
            flops_per_s: self.flops_per_s,
            times: self.times,
        }
    }

    /// Tree/flat-aggregate all elements into one value on the driver.
    /// `bytes_per_partial` is the size of each rank's partial result.
    pub fn aggregate<A: Clone>(
        &mut self,
        init: A,
        bytes_per_partial: f64,
        fold: impl Fn(A, &T) -> A,
        merge: impl Fn(A, A) -> A,
    ) -> A {
        let n = self.len() as f64;
        self.charge_compute(2.0 * n);
        self.times.aggregate += self.stack.aggregate_time(&self.net, bytes_per_partial);
        let mut partials: Vec<A> = Vec::new();
        for p in &self.partitions {
            let mut acc = init_clone(&init);
            for item in p {
                acc = fold(acc, item);
            }
            partials.push(acc);
        }
        let mut out = init;
        for p in partials {
            out = merge(out, p);
        }
        out
    }

    /// Charge raw compute work of `total_flops` spread over the
    /// partitions (for callers that run their own kernels but want the
    /// ledger consistent).
    pub fn charge_compute_flops(&mut self, total_flops: f64) {
        self.charge_compute(total_flops);
    }

    /// Charge one broadcast of `bytes` from the driver to all ranks.
    pub fn charge_broadcast(&mut self, bytes: f64) {
        self.times.broadcast += self
            .net
            .collective(hetsim::CollectiveKind::Broadcast, bytes)
            + bytes * self.stack.serde_s_per_byte;
    }

    /// Charge one shuffle moving `bytes_per_rank` (the engine-level ops
    /// that need real key exchange use `shuffle_by_key`).
    pub fn charge_shuffle(&mut self, bytes_per_rank: f64) {
        self.times.shuffle += self.stack.shuffle_time(&self.net, bytes_per_rank);
    }
}

// A is consumed per partition; require Clone via helper so the signature
// stays simple for callers.
fn init_clone<A>(a: &A) -> A
where
    A: Clone,
{
    a.clone()
}

impl<T: Clone + Send> Dataset<T> {
    /// Re-partition by key: every element is routed to partition
    /// `key(elem) % nparts`, charging a shuffle of the real byte volume.
    pub fn shuffle_by_key(mut self, bytes_per_elem: f64, key: impl Fn(&T) -> usize) -> Dataset<T> {
        let nparts = self.num_partitions();
        let mut new_parts: Vec<Vec<T>> = (0..nparts).map(|_| Vec::new()).collect();
        let mut moved = 0usize;
        for p in &self.partitions {
            for item in p {
                let dest = key(item) % nparts;
                new_parts[dest].push(item.clone());
                moved += 1;
            }
        }
        let bytes_per_rank = moved as f64 * bytes_per_elem / nparts as f64;
        self.charge_shuffle(bytes_per_rank);
        Dataset {
            partitions: new_parts,
            stack: self.stack,
            net: self.net,
            flops_per_s: self.flops_per_s,
            times: self.times,
        }
    }
}

impl<K, V> Dataset<(K, V)>
where
    K: Clone + Send + std::hash::Hash + Eq,
    V: Clone + Send,
{
    /// Spark's `reduceByKey`: shuffle by key hash, then merge values per
    /// key within each partition. `bytes_per_elem` prices the shuffle.
    pub fn reduce_by_key(self, bytes_per_elem: f64, merge: impl Fn(V, V) -> V) -> Dataset<(K, V)> {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::Hasher;
        let hash = |k: &K| {
            let mut h = DefaultHasher::new();
            k.hash(&mut h);
            h.finish() as usize
        };
        let mut shuffled = self.shuffle_by_key(bytes_per_elem, |(k, _)| hash(k));
        let n = shuffled.len() as f64;
        shuffled.charge_compute_flops(2.0 * n);
        let partitions = shuffled
            .partitions
            .into_iter()
            .map(|part| {
                let mut agg: Vec<(K, V)> = Vec::new();
                for (k, v) in part {
                    match agg.iter_mut().find(|(ak, _)| *ak == k) {
                        Some((_, av)) => {
                            let old = av.clone();
                            *av = merge(old, v);
                        }
                        None => agg.push((k, v)),
                    }
                }
                agg
            })
            .collect();
        Dataset {
            partitions,
            stack: shuffled.stack,
            net: shuffled.net,
            flops_per_s: shuffled.flops_per_s,
            times: shuffled.times,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::machines;

    fn ds(n: usize, stack: StackConfig) -> Dataset<u64> {
        let m = machines::sierra_nodes(8);
        Dataset::distribute((0..n as u64).collect(), &m, stack)
    }

    #[test]
    fn distribute_round_robin_balances() {
        let d = ds(100, StackConfig::default_stack());
        assert_eq!(d.num_partitions(), 8);
        assert_eq!(d.len(), 100);
        for p in &d.partitions {
            assert!(p.len() == 12 || p.len() == 13);
        }
    }

    #[test]
    fn map_transforms_and_charges() {
        let d = ds(1000, StackConfig::default_stack());
        let e = d.map(10.0, |x| x * 2);
        assert_eq!(e.len(), 1000);
        assert!(e.partitions[0].iter().all(|x| x % 2 == 0));
        assert!(e.times.compute > 0.0);
    }

    #[test]
    fn aggregate_sums_correctly() {
        let mut d = ds(100, StackConfig::optimized_stack());
        let total = d.aggregate(0u64, 8.0, |a, &x| a + x, |a, b| a + b);
        assert_eq!(total, (0..100).sum::<u64>());
        assert!(d.times.aggregate > 0.0);
    }

    #[test]
    fn shuffle_routes_by_key() {
        let d = ds(64, StackConfig::default_stack());
        let s = d.shuffle_by_key(8.0, |&x| x as usize);
        for (pi, p) in s.partitions.iter().enumerate() {
            for &x in p {
                assert_eq!(x as usize % 8, pi);
            }
        }
        assert_eq!(s.len(), 64);
        assert!(s.times.shuffle > 0.0);
    }

    #[test]
    fn optimized_stack_runs_the_same_pipeline_faster() {
        let run = |stack: StackConfig| {
            let d = ds(10_000, stack);
            let mut d = d
                .map(500.0, |x| x + 1)
                .shuffle_by_key(64.0, |&x| x as usize);
            d.charge_broadcast(1e6);
            let _ = d.aggregate(0u64, 1e6, |a, &x| a + x, |a, b| a + b);
            d.times
        };
        let slow = run(StackConfig::default_stack());
        let fast = run(StackConfig::optimized_stack());
        assert!(fast.total() < slow.total(), "{fast:?} vs {slow:?}");
    }
}

#[cfg(test)]
mod reduce_by_key_tests {
    use super::*;
    use crate::stack::StackConfig;
    use hetsim::machines;

    #[test]
    fn wordcount_is_correct() {
        let words: Vec<(String, u64)> = "a b c a b a d a b c"
            .split_whitespace()
            .map(|w| (w.to_string(), 1u64))
            .collect();
        let m = machines::sierra_nodes(4);
        let d = Dataset::distribute(words, &m, StackConfig::optimized_stack());
        let counted = d.reduce_by_key(16.0, |a, b| a + b);
        let mut all: Vec<(String, u64)> = counted.partitions.iter().flatten().cloned().collect();
        all.sort();
        assert_eq!(
            all,
            vec![
                ("a".to_string(), 4),
                ("b".to_string(), 3),
                ("c".to_string(), 2),
                ("d".to_string(), 1)
            ]
        );
        assert!(counted.times.shuffle > 0.0);
    }

    #[test]
    fn each_key_lands_in_exactly_one_partition() {
        let pairs: Vec<(u32, u64)> = (0..200).map(|i| (i % 20, 1u64)).collect();
        let m = machines::sierra_nodes(8);
        let d = Dataset::distribute(pairs, &m, StackConfig::default_stack());
        let counted = d.reduce_by_key(8.0, |a, b| a + b);
        for key in 0..20u32 {
            let hits = counted
                .partitions
                .iter()
                .filter(|p| p.iter().any(|(k, _)| *k == key))
                .count();
            assert_eq!(hits, 1, "key {key} appears in {hits} partitions");
        }
        let total: u64 = counted.partitions.iter().flatten().map(|(_, v)| v).sum();
        assert_eq!(total, 200);
    }
}
