//! The Data Broker (§4.4): "The Data Broker provides common shared,
//! in-memory storage ... The work created new optimization opportunities
//! that can scale topic modeling with LDA even further."
//!
//! A namespace/key/value store sharded across the machine's nodes by key
//! hash. Reads and writes are priced as point-to-point messages to the
//! owning shard; the LDA-style win is replacing the per-iteration model
//! *broadcast* with broker *puts* by the writer and cached pulls by
//! readers that only re-fetch when the version advances.

use std::collections::HashMap;

use hetsim::{Machine, Network};

/// A stored value with a version stamp.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    bytes: Vec<u8>,
    version: u64,
}

/// The broker: sharded in-memory namespaces.
pub struct DataBroker {
    shards: Vec<HashMap<(String, String), Entry>>,
    net: Network,
    /// Simulated seconds spent in broker traffic.
    pub sim_time: f64,
    version_counter: u64,
}

fn shard_of(key: &str, n: usize) -> usize {
    let mut h = 0xcbf29ce484222325u64;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % n as u64) as usize
}

impl DataBroker {
    pub fn new(machine: &Machine) -> DataBroker {
        let n = machine.nodes.max(1);
        DataBroker {
            shards: (0..n).map(|_| HashMap::new()).collect(),
            net: Network::new(machine.network.clone(), n),
            sim_time: 0.0,
            version_counter: 0,
        }
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Store `value` under `(namespace, key)`; returns the new version.
    pub fn put(&mut self, namespace: &str, key: &str, value: Vec<u8>) -> u64 {
        self.version_counter += 1;
        let v = self.version_counter;
        self.sim_time += self.net.p2p(value.len() as f64);
        let shard = shard_of(key, self.shards.len());
        self.shards[shard].insert(
            (namespace.to_string(), key.to_string()),
            Entry {
                bytes: value,
                version: v,
            },
        );
        v
    }

    /// Read a value (charges the wire for its size).
    pub fn get(&mut self, namespace: &str, key: &str) -> Option<Vec<u8>> {
        let shard = shard_of(key, self.shards.len());
        let entry = self.shards[shard]
            .get(&(namespace.to_string(), key.to_string()))?
            .clone();
        self.sim_time += self.net.p2p(entry.bytes.len() as f64);
        Some(entry.bytes)
    }

    /// Version-aware read: if the caller already holds `have_version`, only
    /// a small version check crosses the wire (the caching optimisation).
    pub fn get_if_newer(
        &mut self,
        namespace: &str,
        key: &str,
        have_version: u64,
    ) -> Option<(Vec<u8>, u64)> {
        let shard = shard_of(key, self.shards.len());
        let entry = self.shards[shard]
            .get(&(namespace.to_string(), key.to_string()))?
            .clone();
        if entry.version <= have_version {
            self.sim_time += self.net.p2p(16.0); // version probe only
            return None;
        }
        self.sim_time += self.net.p2p(entry.bytes.len() as f64);
        Some((entry.bytes, entry.version))
    }

    /// How evenly keys spread over shards: max shard load / mean load.
    pub fn shard_imbalance(&self) -> f64 {
        let loads: Vec<usize> = self.shards.iter().map(|s| s.len()).collect();
        let total: usize = loads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / loads.len() as f64;
        loads.iter().copied().max().unwrap_or(0) as f64 / mean.max(1e-300)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::StackConfig;
    use hetsim::machines;

    fn broker() -> DataBroker {
        DataBroker::new(&machines::sierra_nodes(16))
    }

    #[test]
    fn put_get_roundtrip() {
        let mut b = broker();
        b.put("lda", "beta", vec![1, 2, 3]);
        assert_eq!(b.get("lda", "beta"), Some(vec![1, 2, 3]));
        assert_eq!(b.get("lda", "missing"), None);
        assert!(b.sim_time > 0.0);
    }

    #[test]
    fn namespaces_are_isolated() {
        let mut b = broker();
        b.put("a", "k", vec![1]);
        b.put("b", "k", vec![2]);
        assert_eq!(b.get("a", "k"), Some(vec![1]));
        assert_eq!(b.get("b", "k"), Some(vec![2]));
    }

    #[test]
    fn versioned_reads_skip_unchanged_data() {
        let mut b = broker();
        let v1 = b.put("lda", "beta", vec![0u8; 1_000_000]);
        let (_, v) = b.get_if_newer("lda", "beta", 0).expect("fresh read");
        assert_eq!(v, v1);
        let t_before = b.sim_time;
        assert!(b.get_if_newer("lda", "beta", v).is_none());
        let probe_cost = b.sim_time - t_before;
        // The probe is orders of magnitude cheaper than a full read.
        assert!(probe_cost * 20.0 < t_before, "{probe_cost} vs {t_before}");
    }

    #[test]
    fn keys_spread_over_shards() {
        let mut b = broker();
        for i in 0..4000 {
            b.put("ns", &format!("key-{i}"), vec![0]);
        }
        assert!(b.shard_imbalance() < 1.5, "{}", b.shard_imbalance());
    }

    #[test]
    fn broker_caching_beats_repeated_broadcast() {
        // The LDA pattern: the model updates every iteration, but most
        // workers read it several times per iteration (E-step batches).
        // Broadcast pays the full payload every read; broker pays once per
        // version per worker.
        let machine = machines::sierra_nodes(32);
        let beta_bytes = 4.0e6;
        let iterations = 10;
        let reads_per_iteration = 4;

        // Spark broadcast path.
        let net = Network::new(machine.network.clone(), 32);
        let stack = StackConfig::default_stack();
        let broadcast_cost = iterations as f64
            * reads_per_iteration as f64
            * (net.collective(hetsim::CollectiveKind::Broadcast, beta_bytes)
                + beta_bytes * stack.serde_s_per_byte);

        // Broker path: one put + one fresh read per iteration, then cheap
        // version probes.
        let mut b = DataBroker::new(&machine);
        let payload = vec![0u8; beta_bytes as usize];
        let mut version = 0;
        for _ in 0..iterations {
            b.put("lda", "beta", payload.clone());
            let (_, v) = b.get_if_newer("lda", "beta", version).expect("new version");
            version = v;
            for _ in 1..reads_per_iteration {
                assert!(b.get_if_newer("lda", "beta", version).is_none());
            }
        }
        assert!(
            b.sim_time < broadcast_cost,
            "broker {} vs broadcast {broadcast_cost}",
            b.sim_time
        );
    }
}
