//! `cardioid` — the Cardioid stand-in (§4.1).
//!
//! Cardioid solves the monodomain equations: embarrassingly parallel,
//! compute-bound *reaction* kernels (100-500 math-function calls per cell
//! per step) plus memory-bound *diffusion* stencils. The iCoE work that
//! this crate reproduces:
//!
//! * a Melodee-like DSL ([`dsl`]) that "automatically finds and replaces
//!   expensive math functions with rational polynomials, computes the
//!   coefficients at run-time, and uses [run-time compilation] to produce
//!   high performance kernels";
//! * the rational-approximation fitter itself ([`rational`]);
//! * the membrane model ([`ion`]) — a reduced TT06-flavoured reaction
//!   kernel with the exponential-heavy structure the DSL targets;
//! * the placement study ([`monodomain`]): CPU-diffusion + GPU-reaction
//!   with per-step migrations vs everything-on-GPU — the paper's
//!   "sometimes computation is better performed where the data is located"
//!   lesson.

pub mod dsl;
pub mod ion;
pub mod monodomain;
pub mod rational;

pub use dsl::{Expr, Kernel};
pub use ion::IonModel;
pub use monodomain::{Monodomain, Placement};
pub use rational::{RationalApprox, RationalConst};
