//! The Melodee-like DSL.
//!
//! Melodee "automatically finds and replaces expensive math functions with
//! rational polynomials, computes the coefficients at run-time, and uses an
//! NVIDIA runtime-compilation library to produce high performance kernels".
//! The pipeline here is the same, minus the GPU:
//!
//! 1. a membrane model is written as an expression tree ([`Expr`]);
//! 2. [`Kernel::lower`] walks the tree, computes the value range of every
//!    `exp` argument by interval arithmetic over the declared variable
//!    ranges, and replaces each `exp` with a fitted [`RationalApprox`];
//! 3. the lowered tree is "run-time compiled" to a flat bytecode tape
//!    ([`Kernel::run`]) — our NVRTC analogue — so evaluation does no tree
//!    walking and no branching.

use std::collections::HashMap;

use crate::rational::RationalApprox;

/// An expression over named variables.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Const(f64),
    Var(&'static str),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
    /// The expensive functions the DSL targets.
    Exp(Box<Expr>),
    Tanh(Box<Expr>),
    Log(Box<Expr>),
    /// A fitted rational approximation of some single-variable
    /// subexpression, evaluated at the inner expression's value (produced
    /// by lowering; not written by users).
    Rational(Box<Expr>, RationalApprox),
}

impl Expr {
    pub fn var(name: &'static str) -> Expr {
        Expr::Var(name)
    }

    pub fn c(v: f64) -> Expr {
        Expr::Const(v)
    }

    pub fn exp(self) -> Expr {
        Expr::Exp(Box::new(self))
    }

    pub fn tanh(self) -> Expr {
        Expr::Tanh(Box::new(self))
    }

    pub fn log(self) -> Expr {
        Expr::Log(Box::new(self))
    }

    pub fn add(self, other: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(other))
    }

    pub fn mul(self, other: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(other))
    }

    /// Tree-walking evaluation (the reference semantics).
    pub fn eval(&self, vars: &HashMap<&'static str, f64>) -> f64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Var(n) => *vars
                .get(n)
                .unwrap_or_else(|| panic!("unbound variable {n}")),
            Expr::Add(a, b) => a.eval(vars) + b.eval(vars),
            Expr::Sub(a, b) => a.eval(vars) - b.eval(vars),
            Expr::Mul(a, b) => a.eval(vars) * b.eval(vars),
            Expr::Div(a, b) => a.eval(vars) / b.eval(vars),
            Expr::Neg(a) => -a.eval(vars),
            Expr::Exp(a) => a.eval(vars).exp(),
            Expr::Tanh(a) => a.eval(vars).tanh(),
            Expr::Log(a) => a.eval(vars).ln(),
            Expr::Rational(a, r) => r.eval(a.eval(vars)),
        }
    }

    /// Interval evaluation: the value range of the expression given
    /// variable ranges. Conservative (interval arithmetic).
    pub fn range(&self, ranges: &HashMap<&'static str, (f64, f64)>) -> (f64, f64) {
        match self {
            Expr::Const(v) => (*v, *v),
            Expr::Var(n) => *ranges.get(n).unwrap_or_else(|| panic!("no range for {n}")),
            Expr::Add(a, b) => {
                let (al, ah) = a.range(ranges);
                let (bl, bh) = b.range(ranges);
                (al + bl, ah + bh)
            }
            Expr::Sub(a, b) => {
                let (al, ah) = a.range(ranges);
                let (bl, bh) = b.range(ranges);
                (al - bh, ah - bl)
            }
            Expr::Mul(a, b) => {
                let (al, ah) = a.range(ranges);
                let (bl, bh) = b.range(ranges);
                let cands = [al * bl, al * bh, ah * bl, ah * bh];
                (
                    cands.iter().copied().fold(f64::INFINITY, f64::min),
                    cands.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                )
            }
            Expr::Div(a, b) => {
                let (al, ah) = a.range(ranges);
                let (bl, bh) = b.range(ranges);
                assert!(
                    bl > 0.0 || bh < 0.0,
                    "division range straddles zero: [{bl}, {bh}]"
                );
                let cands = [al / bl, al / bh, ah / bl, ah / bh];
                (
                    cands.iter().copied().fold(f64::INFINITY, f64::min),
                    cands.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                )
            }
            Expr::Neg(a) => {
                let (l, h) = a.range(ranges);
                (-h, -l)
            }
            Expr::Exp(a) => {
                let (l, h) = a.range(ranges);
                (l.exp(), h.exp())
            }
            Expr::Tanh(a) => {
                let (l, h) = a.range(ranges);
                (l.tanh(), h.tanh())
            }
            Expr::Log(a) => {
                let (l, h) = a.range(ranges);
                assert!(
                    l > 0.0,
                    "log argument range includes non-positive values: [{l}, {h}]"
                );
                (l.ln(), h.ln())
            }
            Expr::Rational(a, r) => {
                // Sample the fitted rational over the inner range.
                let (l, h) = a.range(ranges);
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for i in 0..33 {
                    let x = l + (h - l) * i as f64 / 32.0;
                    let v = r.eval(x);
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                (lo, hi)
            }
        }
    }

    /// Count `Exp` nodes (before lowering) / `Rational` nodes (after).
    pub fn count_expensive(&self) -> (usize, usize) {
        match self {
            Expr::Const(_) | Expr::Var(_) => (0, 0),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                let (e1, r1) = a.count_expensive();
                let (e2, r2) = b.count_expensive();
                (e1 + e2, r1 + r2)
            }
            Expr::Neg(a) => a.count_expensive(),
            Expr::Exp(a) | Expr::Tanh(a) | Expr::Log(a) => {
                let (e, r) = a.count_expensive();
                (e + 1, r)
            }
            Expr::Rational(a, _) => {
                let (e, r) = a.count_expensive();
                (e, r + 1)
            }
        }
    }

    /// Set of free variables in the expression.
    pub fn free_vars(&self) -> std::collections::BTreeSet<&'static str> {
        let mut out = std::collections::BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut std::collections::BTreeSet<&'static str>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(n) => {
                out.insert(n);
            }
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Neg(a) | Expr::Exp(a) | Expr::Tanh(a) | Expr::Log(a) | Expr::Rational(a, _) => {
                a.collect_vars(out)
            }
        }
    }

    /// Whether any `Exp` node remains.
    pub fn contains_exp(&self) -> bool {
        match self {
            Expr::Const(_) | Expr::Var(_) => false,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.contains_exp() || b.contains_exp()
            }
            Expr::Neg(a) | Expr::Rational(a, _) => a.contains_exp(),
            Expr::Exp(_) | Expr::Tanh(_) | Expr::Log(_) => true,
        }
    }

    /// Melodee's key transformation: find maximal subexpressions that (a)
    /// contain an expensive function and (b) depend on a *single* variable,
    /// and replace each with one fitted rational polynomial of that
    /// variable. Gate steady-states and time constants — functions of the
    /// membrane potential only — collapse to a single rational evaluation
    /// each.
    pub fn lower_exp(self, ranges: &HashMap<&'static str, (f64, f64)>, degree: usize) -> Expr {
        if !self.contains_exp() {
            return self;
        }
        let vars = self.free_vars();
        if vars.len() == 1 {
            let var = *vars.iter().next().expect("one free variable");
            let (lo, hi) = ranges[var];
            let pad = 0.02 * (hi - lo).max(1e-6);
            let this = self.clone();
            let f = move |x: f64| {
                let mut m = HashMap::new();
                m.insert(var, x);
                this.eval(&m)
            };
            let r = RationalApprox::fit(f, lo - pad, hi + pad, degree, degree, 40 * degree);
            return Expr::Rational(Box::new(Expr::Var(var)), r);
        }
        match self {
            Expr::Add(a, b) => Expr::Add(
                Box::new(a.lower_exp(ranges, degree)),
                Box::new(b.lower_exp(ranges, degree)),
            ),
            Expr::Sub(a, b) => Expr::Sub(
                Box::new(a.lower_exp(ranges, degree)),
                Box::new(b.lower_exp(ranges, degree)),
            ),
            Expr::Mul(a, b) => Expr::Mul(
                Box::new(a.lower_exp(ranges, degree)),
                Box::new(b.lower_exp(ranges, degree)),
            ),
            Expr::Div(a, b) => Expr::Div(
                Box::new(a.lower_exp(ranges, degree)),
                Box::new(b.lower_exp(ranges, degree)),
            ),
            Expr::Neg(a) => Expr::Neg(Box::new(a.lower_exp(ranges, degree))),
            // Multi-variable arguments: approximate inside them.
            Expr::Exp(a) => Expr::Exp(Box::new(a.lower_exp(ranges, degree))),
            Expr::Tanh(a) => Expr::Tanh(Box::new(a.lower_exp(ranges, degree))),
            Expr::Log(a) => Expr::Log(Box::new(a.lower_exp(ranges, degree))),
            other => other,
        }
    }
}

/// Bytecode ops for the "run-time compiled" tape.
#[derive(Debug, Clone, PartialEq)]
enum Op {
    PushConst(f64),
    PushVar(usize),
    Add,
    Sub,
    Mul,
    Div,
    Neg,
    Exp,
    Tanh,
    Log,
    /// Evaluate rational approximation `ratios[i]` on the stack top.
    Rational(usize),
}

/// A compiled kernel: variable layout + flat tape (the NVRTC analogue).
#[derive(Debug, Clone)]
pub struct Kernel {
    vars: Vec<&'static str>,
    ops: Vec<Op>,
    rationals: Vec<RationalApprox>,
}

impl Kernel {
    /// Compile an expression, given the variable order used at call time.
    pub fn compile(expr: &Expr, vars: &[&'static str]) -> Kernel {
        let mut k = Kernel {
            vars: vars.to_vec(),
            ops: Vec::new(),
            rationals: Vec::new(),
        };
        k.emit(expr);
        k
    }

    /// Lower `exp` calls against `ranges` and compile in one go.
    pub fn lower(
        expr: Expr,
        vars: &[&'static str],
        ranges: &HashMap<&'static str, (f64, f64)>,
        degree: usize,
    ) -> Kernel {
        let lowered = expr.lower_exp(ranges, degree);
        Kernel::compile(&lowered, vars)
    }

    fn emit(&mut self, e: &Expr) {
        match e {
            Expr::Const(v) => self.ops.push(Op::PushConst(*v)),
            Expr::Var(n) => {
                let idx = self
                    .vars
                    .iter()
                    .position(|v| v == n)
                    .unwrap_or_else(|| panic!("variable {n} not in kernel signature"));
                self.ops.push(Op::PushVar(idx));
            }
            Expr::Add(a, b) => {
                self.emit(a);
                self.emit(b);
                self.ops.push(Op::Add);
            }
            Expr::Sub(a, b) => {
                self.emit(a);
                self.emit(b);
                self.ops.push(Op::Sub);
            }
            Expr::Mul(a, b) => {
                self.emit(a);
                self.emit(b);
                self.ops.push(Op::Mul);
            }
            Expr::Div(a, b) => {
                self.emit(a);
                self.emit(b);
                self.ops.push(Op::Div);
            }
            Expr::Neg(a) => {
                self.emit(a);
                self.ops.push(Op::Neg);
            }
            Expr::Exp(a) => {
                self.emit(a);
                self.ops.push(Op::Exp);
            }
            Expr::Tanh(a) => {
                self.emit(a);
                self.ops.push(Op::Tanh);
            }
            Expr::Log(a) => {
                self.emit(a);
                self.ops.push(Op::Log);
            }
            Expr::Rational(a, r) => {
                self.emit(a);
                self.rationals.push(r.clone());
                self.ops.push(Op::Rational(self.rationals.len() - 1));
            }
        }
    }

    /// Evaluate the tape for one set of variable values.
    pub fn run(&self, values: &[f64]) -> f64 {
        debug_assert_eq!(values.len(), self.vars.len());
        let mut stack: Vec<f64> = Vec::with_capacity(16);
        for op in &self.ops {
            match op {
                Op::PushConst(v) => stack.push(*v),
                Op::PushVar(i) => stack.push(values[*i]),
                Op::Add => bin(&mut stack, |a, b| a + b),
                Op::Sub => bin(&mut stack, |a, b| a - b),
                Op::Mul => bin(&mut stack, |a, b| a * b),
                Op::Div => bin(&mut stack, |a, b| a / b),
                Op::Neg => {
                    let a = stack.pop().expect("stack underflow");
                    stack.push(-a);
                }
                Op::Exp => {
                    let a = stack.pop().expect("stack underflow");
                    stack.push(a.exp());
                }
                Op::Tanh => {
                    let a = stack.pop().expect("stack underflow");
                    stack.push(a.tanh());
                }
                Op::Log => {
                    let a = stack.pop().expect("stack underflow");
                    stack.push(a.ln());
                }
                Op::Rational(i) => {
                    let a = stack.pop().expect("stack underflow");
                    stack.push(self.rationals[*i].eval(a));
                }
            }
        }
        stack.pop().expect("empty expression")
    }

    /// Number of transcendental ops remaining after lowering.
    pub fn remaining_exps(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, Op::Exp | Op::Tanh | Op::Log))
            .count()
    }

    pub fn num_rationals(&self) -> usize {
        self.rationals.len()
    }

    /// Flops of one tape run (transcendental exp counted at its amortised
    /// instruction cost, ~20 flops).
    pub fn flops(&self) -> f64 {
        self.ops
            .iter()
            .map(|o| match o {
                Op::PushConst(_) | Op::PushVar(_) => 0.0,
                Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Neg => 1.0,
                Op::Exp | Op::Tanh | Op::Log => 20.0,
                Op::Rational(i) => self.rationals[*i].flops(),
            })
            .sum()
    }
}

#[inline]
fn bin(stack: &mut Vec<f64>, f: impl Fn(f64, f64) -> f64) {
    let b = stack.pop().expect("stack underflow");
    let a = stack.pop().expect("stack underflow");
    stack.push(f(a, b));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate_expr() -> Expr {
        // 1 / (1 + exp((v + 20) / 7))
        Expr::Div(
            Box::new(Expr::c(1.0)),
            Box::new(Expr::Add(
                Box::new(Expr::c(1.0)),
                Box::new(
                    Expr::Div(
                        Box::new(Expr::Add(Box::new(Expr::var("v")), Box::new(Expr::c(20.0)))),
                        Box::new(Expr::c(7.0)),
                    )
                    .exp(),
                ),
            )),
        )
    }

    fn vranges() -> HashMap<&'static str, (f64, f64)> {
        HashMap::from([("v", (-90.0, 50.0))])
    }

    #[test]
    fn tree_eval_matches_formula() {
        let e = gate_expr();
        let vars = HashMap::from([("v", -20.0)]);
        assert!((e.eval(&vars) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn compiled_tape_matches_tree() {
        let e = gate_expr();
        let k = Kernel::compile(&e, &["v"]);
        for v in [-80.0, -40.0, 0.0, 30.0] {
            let tree = e.eval(&HashMap::from([("v", v)]));
            assert!((k.run(&[v]) - tree).abs() < 1e-14);
        }
    }

    #[test]
    fn lowering_replaces_all_exps() {
        let e = gate_expr();
        assert_eq!(e.count_expensive(), (1, 0));
        let k = Kernel::lower(e, &["v"], &vranges(), 8);
        assert_eq!(k.remaining_exps(), 0);
        assert_eq!(k.num_rationals(), 1);
    }

    #[test]
    fn lowered_kernel_is_accurate() {
        let e = gate_expr();
        let exact = Kernel::compile(&e, &["v"]);
        let lowered = Kernel::lower(e, &["v"], &vranges(), 8);
        let mut worst = 0.0f64;
        for i in 0..1000 {
            let v = -90.0 + 140.0 * i as f64 / 999.0;
            let err = (lowered.run(&[v]) - exact.run(&[v])).abs();
            worst = worst.max(err);
        }
        assert!(worst < 1e-3, "worst abs error {worst}");
    }

    #[test]
    fn interval_arithmetic_is_conservative() {
        let e = Expr::Mul(Box::new(Expr::var("v")), Box::new(Expr::var("v")));
        let ranges = HashMap::from([("v", (-2.0, 3.0))]);
        let (lo, hi) = e.range(&ranges);
        // True range of v^2 is [0, 9]; interval arithmetic gives [-6, 9].
        assert!(lo <= 0.0 && hi >= 9.0);
    }

    #[test]
    fn lowered_flops_are_cheaper_than_exp_for_modest_degree() {
        let e = gate_expr();
        let exact = Kernel::compile(&e, &["v"]);
        let lowered = Kernel::lower(e, &["v"], &vranges(), 3);
        assert!(
            lowered.flops() < exact.flops(),
            "{} vs {}",
            lowered.flops(),
            exact.flops()
        );
    }

    #[test]
    #[should_panic(expected = "unbound variable")]
    fn missing_variable_panics() {
        Expr::var("nope").eval(&HashMap::new());
    }
}

#[cfg(test)]
mod transcendental_tests {
    use super::*;

    #[test]
    fn tanh_and_log_evaluate_and_compile() {
        // f(v) = tanh(v / 10) + log(1 + exp(v / 20)) (softplus-ish).
        let e = Expr::Div(Box::new(Expr::var("v")), Box::new(Expr::c(10.0)))
            .tanh()
            .add(
                Expr::Add(
                    Box::new(Expr::c(1.0)),
                    Box::new(Expr::Div(Box::new(Expr::var("v")), Box::new(Expr::c(20.0))).exp()),
                )
                .log(),
            );
        let k = Kernel::compile(&e, &["v"]);
        for v in [-30.0, -5.0, 0.0, 12.0, 40.0] {
            let want = (v / 10.0f64).tanh() + (1.0 + (v / 20.0f64).exp()).ln();
            assert!((k.run(&[v]) - want).abs() < 1e-12, "v={v}");
        }
    }

    #[test]
    fn mixed_transcendentals_lower_to_one_rational() {
        let e = Expr::Div(Box::new(Expr::var("v")), Box::new(Expr::c(10.0)))
            .tanh()
            .add(
                Expr::Add(
                    Box::new(Expr::c(2.0)),
                    Box::new(Expr::Div(Box::new(Expr::var("v")), Box::new(Expr::c(20.0))).exp()),
                )
                .log(),
            );
        let ranges = HashMap::from([("v", (-40.0f64, 40.0f64))]);
        let exact = Kernel::compile(&e, &["v"]);
        let lowered = Kernel::lower(e, &["v"], &ranges, 10);
        assert_eq!(lowered.remaining_exps(), 0);
        assert_eq!(
            lowered.num_rationals(),
            1,
            "whole single-variable expr collapses"
        );
        let mut worst = 0.0f64;
        for i in 0..400 {
            let v = -40.0 + 80.0 * i as f64 / 399.0;
            worst = worst.max((lowered.run(&[v]) - exact.run(&[v])).abs());
        }
        assert!(worst < 5e-3, "worst abs err {worst}");
    }

    #[test]
    fn tanh_range_is_monotone_interval() {
        let e = Expr::var("v").tanh();
        let ranges = HashMap::from([("v", (-2.0f64, 1.0f64))]);
        let (lo, hi) = e.range(&ranges);
        assert!((lo - (-2.0f64).tanh()).abs() < 1e-12);
        assert!((hi - 1.0f64.tanh()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn log_of_possibly_negative_range_panics() {
        let e = Expr::var("v").log();
        let ranges = HashMap::from([("v", (-1.0f64, 2.0f64))]);
        e.range(&ranges);
    }
}
