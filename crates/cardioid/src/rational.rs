//! Rational-polynomial approximation of expensive math functions.
//!
//! The Cardioid team "found that replacing expensive functions with
//! run-time rational polynomials was essential for top performance". The
//! fitter here solves the linearised least-squares problem
//! `min sum_i w_i (p(t_i) - f(x_i) q(t_i))^2` on Chebyshev nodes, with `q`
//! normalised to `q(0) = 1` — the same construction Melodee automates.
//! Fitting happens in the normalised coordinate `t = (x - c) / s` mapped to
//! `[-1, 1]`, which keeps the monomial normal equations well conditioned,
//! and rows are weighted by `1/|f|` so the *relative* error is minimised.

use linalg::DenseMatrix;

/// A rational approximation `p(t) / q(t)`, `t = (x - centre) / scale`,
/// valid on `[lo, hi]`.
#[derive(Debug, Clone, PartialEq)]
pub struct RationalApprox {
    /// Numerator coefficients in `t`, low degree first.
    pub p: Vec<f64>,
    /// Denominator coefficients in `t`, low degree first; `q[0] == 1`.
    pub q: Vec<f64>,
    pub lo: f64,
    pub hi: f64,
    centre: f64,
    scale: f64,
}

/// Evaluate a polynomial (low-degree-first coefficients) by Horner.
#[inline]
pub fn horner(coeffs: &[f64], x: f64) -> f64 {
    let mut acc = 0.0;
    for &c in coeffs.iter().rev() {
        acc = acc * x + c;
    }
    acc
}

impl RationalApprox {
    /// Fit `f` on `[lo, hi]` with numerator degree `m` and denominator
    /// degree `k`, sampling on `samples` Chebyshev nodes.
    pub fn fit(
        f: impl Fn(f64) -> f64,
        lo: f64,
        hi: f64,
        m: usize,
        k: usize,
        samples: usize,
    ) -> RationalApprox {
        assert!(hi > lo);
        let centre = 0.5 * (lo + hi);
        let scale = 0.5 * (hi - lo);
        let n_unknowns = (m + 1) + k; // q0 fixed to 1
        let ns = samples.max(2 * n_unknowns);
        // Chebyshev nodes in t in [-1, 1].
        let ts: Vec<f64> = (0..ns)
            .map(|i| (((2 * i + 1) as f64) * std::f64::consts::PI / (2.0 * ns as f64)).cos())
            .collect();
        let fxs: Vec<f64> = ts.iter().map(|&t| f(centre + scale * t)).collect();
        let fmax = fxs
            .iter()
            .map(|v| v.abs())
            .fold(0.0f64, f64::max)
            .max(1e-300);
        // Sanathanan-Koerner iteration: weighted rows
        // w * (p(t) - f(x) (q(t) - 1)) = w * f(x), with w refined by the
        // previous denominator so the *true* rational residual is minimised.
        let mut q_prev = vec![1.0f64];
        let mut best: Option<(Vec<f64>, Vec<f64>)> = None;
        for _sk in 0..4 {
            let mut a = DenseMatrix::zeros(ns, n_unknowns);
            let mut b = vec![0.0; ns];
            for (r, &t) in ts.iter().enumerate() {
                let fx = fxs[r];
                let w = 1.0 / (fx.abs().max(1e-3 * fmax) * horner(&q_prev, t).abs().max(1e-3));
                let mut pw = 1.0;
                for c in 0..=m {
                    a[(r, c)] = w * pw;
                    pw *= t;
                }
                let mut qw = t;
                for c in 0..k {
                    a[(r, m + 1 + c)] = -w * fx * qw;
                    qw *= t;
                }
                b[r] = w * fx;
            }
            // Normal equations A^T A c = A^T b, lightly regularised.
            let at = transpose(&a);
            let mut ata = at.matmul(&a);
            let mut atb = vec![0.0; n_unknowns];
            at.matvec(&b, &mut atb);
            for i in 0..n_unknowns {
                ata[(i, i)] *= 1.0 + 1e-13;
            }
            let Some(c) = ata.solve(&atb) else { break };
            let p = c[..=m].to_vec();
            let mut q = vec![1.0];
            q.extend_from_slice(&c[m + 1..]);
            q_prev = q.clone();
            best = Some((p, q));
        }
        let (p, q) = best.expect("at least one SK iteration succeeded");
        RationalApprox {
            p,
            q,
            lo,
            hi,
            centre,
            scale,
        }
    }

    /// Evaluate the approximation.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        let t = (x - self.centre) / self.scale;
        horner(&self.p, t) / horner(&self.q, t)
    }

    /// Maximum relative error against `f` on a dense sample of the fit
    /// interval.
    pub fn max_rel_error(&self, f: impl Fn(f64) -> f64, samples: usize) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..samples {
            let x = self.lo + (self.hi - self.lo) * i as f64 / (samples - 1) as f64;
            let exact = f(x);
            let approx = self.eval(x);
            let denom = exact.abs().max(1e-12);
            worst = worst.max((approx - exact).abs() / denom);
        }
        worst
    }

    /// Flop count of one evaluation (2 Horner chains + normalise + divide).
    pub fn flops(&self) -> f64 {
        2.0 * (self.p.len() as f64 - 1.0) + 2.0 * (self.q.len() as f64 - 1.0) + 3.0
    }
}

fn transpose(a: &DenseMatrix) -> DenseMatrix {
    let mut t = DenseMatrix::zeros(a.cols, a.rows);
    for i in 0..a.rows {
        for j in 0..a.cols {
            t[(j, i)] = a[(i, j)];
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horner_matches_naive() {
        let c = [1.0, -2.0, 0.5, 3.0];
        let x = 1.7;
        let naive = 1.0 - 2.0 * x + 0.5 * x * x + 3.0 * x * x * x;
        assert!((horner(&c, x) - naive).abs() < 1e-12);
    }

    #[test]
    #[ignore]
    fn diag_print_errors() {
        for d in [4, 6, 8, 10, 12] {
            let r = RationalApprox::fit(f64::exp, -5.0, 5.0, d, d, 40 * d);
            println!("exp deg {d}: {:.3e}", r.max_rel_error(f64::exp, 1000));
            let f = |v: f64| 1.0 / (1.0 + ((v + 20.0) / 7.0).exp());
            let r = RationalApprox::fit(f, -90.0, 50.0, d, d, 40 * d);
            println!("sig deg {d}: {:.3e}", r.max_rel_error(f, 2000));
        }
    }

    #[test]
    fn fits_exp_to_high_accuracy() {
        let r = RationalApprox::fit(f64::exp, -5.0, 5.0, 6, 6, 240);
        let err = r.max_rel_error(f64::exp, 1000);
        assert!(err < 1e-3, "max rel error {err}");
    }

    #[test]
    fn fits_sigmoid_gate_function() {
        // Typical gating steady-state: 1 / (1 + exp((v + 20) / 7)).
        let f = |v: f64| 1.0 / (1.0 + ((v + 20.0) / 7.0).exp());
        let r = RationalApprox::fit(f, -90.0, 50.0, 8, 8, 400);
        let err = r.max_rel_error(f, 2000);
        assert!(err < 1e-3, "max rel error {err}");
    }

    #[test]
    fn exact_for_rational_inputs() {
        // f = (1 + 2x) / (1 + 0.5 x) is itself rational: fit is ~exact.
        let f = |x: f64| (1.0 + 2.0 * x) / (1.0 + 0.5 * x);
        let r = RationalApprox::fit(f, 0.0, 1.0, 1, 1, 50);
        assert!(r.max_rel_error(f, 100) < 1e-9);
    }

    #[test]
    fn flop_count_reflects_degrees() {
        let r = RationalApprox {
            p: vec![0.0; 7],
            q: vec![0.0; 7],
            lo: 0.0,
            hi: 1.0,
            centre: 0.5,
            scale: 0.5,
        };
        assert_eq!(r.flops(), 27.0);
    }

    #[test]
    fn error_grows_outside_interval() {
        let r = RationalApprox::fit(f64::exp, -1.0, 1.0, 4, 4, 100);
        let inside = (r.eval(0.5) - 0.5f64.exp()).abs();
        let outside = (r.eval(4.0) - 4.0f64.exp()).abs();
        assert!(outside > 10.0 * inside.max(1e-15));
    }

    #[test]
    fn wide_interval_stays_well_conditioned() {
        // The normalisation to [-1, 1] is what makes this work.
        let f = |v: f64| 1.0 / (1.0 + ((v + 20.0) / 7.0).exp());
        let r = RationalApprox::fit(f, -200.0, 200.0, 10, 10, 600);
        // Use absolute error: the function underflows to ~0 on one side,
        // where relative error is meaningless.
        let mut worst = 0.0f64;
        for i in 0..500 {
            let x = -200.0 + 400.0 * i as f64 / 499.0;
            worst = worst.max((r.eval(x) - f(x)).abs());
        }
        assert!(worst < 0.05, "{worst}");
    }
}

/// Fixed-degree rational evaluator with compile-time coefficient counts —
/// the §4.1 observation that "changing run-time polynomial coefficients
/// into compile-time constants could yield significant performance".
/// Monomorphisation gives the compiler fixed trip counts and stack arrays
/// (what Melodee's NVRTC pass achieves on the GPU).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RationalConst<const M: usize, const K: usize> {
    pub p: [f64; M],
    pub q: [f64; K],
    centre: f64,
    scale: f64,
}

impl<const M: usize, const K: usize> RationalConst<M, K> {
    /// Freeze a fitted approximation into fixed-size arrays. Panics if the
    /// degrees do not match.
    pub fn freeze(r: &RationalApprox) -> RationalConst<M, K> {
        assert_eq!(r.p.len(), M, "numerator degree mismatch");
        assert_eq!(r.q.len(), K, "denominator degree mismatch");
        let mut p = [0.0; M];
        let mut q = [0.0; K];
        p.copy_from_slice(&r.p);
        q.copy_from_slice(&r.q);
        RationalConst {
            p,
            q,
            centre: r.centre,
            scale: r.scale,
        }
    }

    /// Evaluate (fully unrollable Horner chains).
    #[inline(always)]
    pub fn eval(&self, x: f64) -> f64 {
        let t = (x - self.centre) / self.scale;
        let mut num = 0.0;
        let mut i = M;
        while i > 0 {
            i -= 1;
            num = num * t + self.p[i];
        }
        let mut den = 0.0;
        let mut j = K;
        while j > 0 {
            j -= 1;
            den = den * t + self.q[j];
        }
        num / den
    }
}

#[cfg(test)]
mod const_tests {
    use super::*;

    #[test]
    fn frozen_evaluator_matches_dynamic() {
        let r = RationalApprox::fit(f64::exp, -3.0, 3.0, 6, 6, 200);
        let frozen: RationalConst<7, 7> = RationalConst::freeze(&r);
        for i in 0..200 {
            let x = -3.0 + 6.0 * i as f64 / 199.0;
            assert!((frozen.eval(x) - r.eval(x)).abs() < 1e-14);
        }
    }

    #[test]
    #[should_panic(expected = "degree mismatch")]
    fn degree_mismatch_panics() {
        let r = RationalApprox::fit(f64::exp, -1.0, 1.0, 4, 4, 100);
        let _: RationalConst<7, 7> = RationalConst::freeze(&r);
    }

    #[test]
    fn frozen_evaluator_is_accurate_on_gate_functions() {
        let f = |v: f64| 1.0 / (1.0 + ((v + 20.0) / 7.0).exp());
        let r = RationalApprox::fit(f, -90.0, 50.0, 8, 8, 400);
        let frozen: RationalConst<9, 9> = RationalConst::freeze(&r);
        let mut worst = 0.0f64;
        for i in 0..500 {
            let v = -90.0 + 140.0 * i as f64 / 499.0;
            worst = worst.max((frozen.eval(v) - f(v)).abs());
        }
        assert!(worst < 1e-3, "{worst}");
    }
}
