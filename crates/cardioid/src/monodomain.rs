//! The monodomain solver and the CPU/GPU placement study.
//!
//! §4.1: the team compared running diffusion on the CPU (overlapped with
//! GPU reaction kernels) against running everything on the GPU, and found
//! that "data transfer costs can be high enough that sometimes computation
//! is better performed where the data is located". [`Placement`] encodes
//! both strategies; [`Monodomain::simulated_step_cost`] prices them.

use hetsim::{KernelProfile, Loc, Sim, Target, TransferKind};

use crate::ion::{IonModel, STATE_DIM};

/// Where each half of the step runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Everything on the GPU (what Cardioid shipped).
    AllGpu,
    /// Diffusion on the CPU, reaction on the GPU, voltage migrating every
    /// step (the tempting-but-slower split).
    SplitCpuGpu,
    /// Everything on the CPU (pre-iCoE baseline).
    AllCpu,
}

/// 2-D monodomain tissue: V plus gate fields on an `nx` x `ny` grid.
pub struct Monodomain {
    pub nx: usize,
    pub ny: usize,
    /// Diffusion coefficient * dt / h^2 (dimensionless CFL-ish number).
    pub alpha: f64,
    pub model: IonModel,
    /// State: [cell][state_dim], cell-major.
    pub state: Vec<[f64; STATE_DIM]>,
    pub dt: f64,
}

impl Monodomain {
    pub fn new(nx: usize, ny: usize, alpha: f64, dt: f64, lowering_degree: usize) -> Monodomain {
        assert!(alpha < 0.25, "explicit diffusion needs alpha < 0.25");
        let model = IonModel::new(lowering_degree);
        let state = vec![IonModel::rest(); nx * ny];
        Monodomain {
            nx,
            ny,
            alpha,
            model,
            state,
            dt,
        }
    }

    /// Apply a stimulus to a disc of cells.
    pub fn stimulate(&mut self, ci: usize, cj: usize, radius: usize, dv: f64) {
        for i in 0..self.nx {
            for j in 0..self.ny {
                let d2 = (i as isize - ci as isize).pow(2) + (j as isize - cj as isize).pow(2);
                if d2 <= (radius * radius) as isize {
                    self.state[i * self.ny + j][0] += dv;
                }
            }
        }
    }

    /// One step: reaction (per cell) then explicit diffusion of V.
    pub fn step(&mut self, lowered: bool) {
        // Reaction.
        for s in self.state.iter_mut() {
            let d = if lowered {
                self.model.rhs_lowered(s)
            } else {
                self.model.rhs_exact(s)
            };
            for k in 0..STATE_DIM {
                s[k] += self.dt * d[k];
            }
            for g in s.iter_mut().skip(1) {
                *g = g.clamp(0.0, 1.0);
            }
        }
        // Diffusion of V (5-point, homogeneous Neumann edges).
        let (nx, ny) = (self.nx, self.ny);
        let v_old: Vec<f64> = self.state.iter().map(|s| s[0]).collect();
        for i in 0..nx {
            for j in 0..ny {
                let c = v_old[i * ny + j];
                let up = if i > 0 { v_old[(i - 1) * ny + j] } else { c };
                let dn = if i + 1 < nx {
                    v_old[(i + 1) * ny + j]
                } else {
                    c
                };
                let lf = if j > 0 { v_old[i * ny + j - 1] } else { c };
                let rt = if j + 1 < ny { v_old[i * ny + j + 1] } else { c };
                self.state[i * ny + j][0] = c + self.alpha * (up + dn + lf + rt - 4.0 * c);
            }
        }
    }

    /// Fraction of tissue depolarised above `threshold`.
    pub fn activated_fraction(&self, threshold: f64) -> f64 {
        let n = self.state.len() as f64;
        self.state.iter().filter(|s| s[0] > threshold).count() as f64 / n
    }

    /// Simulated cost of one step under `placement` on `sim`'s machine.
    /// `lowered` selects rational-polynomial reaction flops.
    pub fn simulated_step_cost(&self, sim: &mut Sim, placement: Placement, lowered: bool) -> f64 {
        let n = (self.nx * self.ny) as f64;
        let (flops_exact, flops_lowered) = self.model.flops();
        let reaction_flops = if lowered { flops_lowered } else { flops_exact } * n;
        let state_bytes = 8.0 * STATE_DIM as f64 * n;
        let reaction = KernelProfile::new("cardioid-reaction")
            .flops(reaction_flops)
            .bytes_read(state_bytes)
            .bytes_written(state_bytes)
            .parallelism(n);
        let v_bytes = 8.0 * n;
        let diffusion = KernelProfile::new("cardioid-diffusion")
            .flops(6.0 * n)
            .bytes_read(5.0 * v_bytes)
            .bytes_written(v_bytes)
            .parallelism(n);
        match placement {
            Placement::AllGpu => {
                sim.launch(Target::gpu(0), &reaction) + sim.launch(Target::gpu(0), &diffusion)
            }
            Placement::AllCpu => {
                sim.launch(Target::cpu_all(), &reaction) + sim.launch(Target::cpu_all(), &diffusion)
            }
            Placement::SplitCpuGpu => {
                // Reaction on GPU; V migrates to host, diffuses, migrates
                // back — every step.
                let t_r = sim.launch(Target::gpu(0), &reaction);
                let t1 = sim.transfer(Loc::Gpu(0), Loc::Host, v_bytes, TransferKind::Memcpy);
                let t_d = sim.launch(Target::cpu_all(), &diffusion);
                let t2 = sim.transfer(Loc::Host, Loc::Gpu(0), v_bytes, TransferKind::Memcpy);
                t_r + t1 + t_d + t2
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::machines;

    fn tissue() -> Monodomain {
        Monodomain::new(24, 24, 0.2, 0.02, 8)
    }

    #[test]
    fn stimulus_wave_spreads() {
        let mut m = tissue();
        m.stimulate(12, 12, 3, 60.0);
        let f0 = m.activated_fraction(-40.0);
        let mut peak = f0;
        for _ in 0..150 {
            m.step(false);
            peak = peak.max(m.activated_fraction(-40.0));
        }
        assert!(peak > f0, "wave did not spread: peak {peak} vs start {f0}");
        assert!(peak > 0.15, "{peak}");
    }

    #[test]
    fn lowered_kernels_propagate_same_wave() {
        let mut a = tissue();
        let mut b = tissue();
        a.stimulate(12, 12, 3, 60.0);
        b.stimulate(12, 12, 3, 60.0);
        let (mut pa, mut pb) = (0.0f64, 0.0f64);
        for _ in 0..100 {
            a.step(false);
            b.step(true);
            pa = pa.max(a.activated_fraction(-40.0));
            pb = pb.max(b.activated_fraction(-40.0));
        }
        assert!((pa - pb).abs() < 0.08, "activation mismatch {pa} vs {pb}");
    }

    #[test]
    fn all_gpu_beats_split_placement() {
        // The §4.1 decision: migration penalty makes the split slower.
        let m = tissue();
        let mut sim = Sim::new(machines::sierra_node());
        let t_all = m.simulated_step_cost(&mut sim, Placement::AllGpu, true);
        let t_split = m.simulated_step_cost(&mut sim, Placement::SplitCpuGpu, true);
        assert!(t_split > t_all, "split {t_split} all-gpu {t_all}");
    }

    #[test]
    fn gpu_beats_cpu_on_large_tissue() {
        let m = Monodomain::new(768, 768, 0.2, 0.02, 8);
        let mut sim = Sim::new(machines::sierra_node());
        let t_gpu = m.simulated_step_cost(&mut sim, Placement::AllGpu, true);
        let t_cpu = m.simulated_step_cost(&mut sim, Placement::AllCpu, true);
        assert!(t_gpu < t_cpu, "gpu {t_gpu} cpu {t_cpu}");
    }

    #[test]
    fn lowered_reaction_is_cheaper_in_simulation() {
        let m = Monodomain::new(128, 128, 0.2, 0.02, 3);
        let mut sim = Sim::new(machines::sierra_node());
        let t_lowered = m.simulated_step_cost(&mut sim, Placement::AllGpu, true);
        let t_exact = m.simulated_step_cost(&mut sim, Placement::AllGpu, false);
        assert!(t_lowered < t_exact, "{t_lowered} vs {t_exact}");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn unstable_alpha_rejected() {
        Monodomain::new(8, 8, 0.3, 0.02, 4);
    }
}

#[cfg(test)]
mod diag {
    use super::*;

    #[test]
    #[ignore]
    fn trace_wave() {
        let mut m = Monodomain::new(24, 24, 0.2, 0.02, 8);
        m.stimulate(12, 12, 3, 60.0);
        for s in 0..150 {
            m.step(false);
            if s % 10 == 0 {
                let st = &m.state[12 * 24 + 12];
                let edge = &m.state[12 * 24 + 16];
                println!(
                    "step {s}: frac {:.3} centre v {:.1} m {:.2} h {:.2} edge v {:.1}",
                    m.activated_fraction(-40.0),
                    st[0],
                    st[1],
                    st[2],
                    edge[0]
                );
            }
        }
    }
}
