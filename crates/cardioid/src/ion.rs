//! A reduced TT06-flavoured membrane model.
//!
//! Three gates plus the transmembrane potential — structurally the same
//! exponential-heavy arithmetic as the production reaction kernels (which
//! evaluate 100-500 math calls per cell per step), small enough to verify.

use std::collections::HashMap;

use crate::dsl::{Expr, Kernel};

/// Per-cell state: potential + 3 gates.
pub const STATE_DIM: usize = 4;

/// The membrane model with three implementation strategies that must agree:
/// direct Rust (`step_direct`), DSL tree, and lowered/compiled DSL kernels.
#[derive(Debug, Clone)]
pub struct IonModel {
    /// Compiled (lowered) kernels for each state derivative.
    kernels: Vec<Kernel>,
    /// Exact (unlowered) kernels.
    exact: Vec<Kernel>,
}

/// Gate helper: steady state `1 / (1 + exp((v - half) / slope))`.
fn gate_inf(half: f64, slope: f64) -> Expr {
    Expr::Div(
        Box::new(Expr::c(1.0)),
        Box::new(Expr::Add(
            Box::new(Expr::c(1.0)),
            Box::new(
                Expr::Div(
                    Box::new(Expr::Sub(Box::new(Expr::var("v")), Box::new(Expr::c(half)))),
                    Box::new(Expr::c(slope)),
                )
                .exp(),
            ),
        )),
    )
}

/// Gate time constant `tau0 + tau1 * exp(-((v - mu)/sig)^2)`-ish, kept
/// rational-friendly: `tau0 + tau1 * exp((v - mu) / sig)` bounded form.
fn gate_tau(tau0: f64, tau1: f64, mu: f64, sig: f64) -> Expr {
    Expr::Add(
        Box::new(Expr::c(tau0)),
        Box::new(Expr::Div(
            Box::new(Expr::c(tau1)),
            Box::new(Expr::Add(
                Box::new(Expr::c(1.0)),
                Box::new(
                    Expr::Div(
                        Box::new(Expr::Sub(Box::new(Expr::var("v")), Box::new(Expr::c(mu)))),
                        Box::new(Expr::c(sig)),
                    )
                    .exp(),
                ),
            )),
        )),
    )
}

/// dgate/dt = (inf(v) - g) / tau(v)
fn gate_rhs(inf: Expr, tau: Expr, gvar: &'static str) -> Expr {
    Expr::Div(
        Box::new(Expr::Sub(Box::new(inf), Box::new(Expr::var(gvar)))),
        Box::new(tau),
    )
}

/// dv/dt = -(I_fast + I_slow + I_leak) with simple gated currents.
fn v_rhs() -> Expr {
    // I_fast = 8 * m * (v - 40); I_slow = 0.5 * h * (v + 85); leak.
    let i_fast = Expr::Mul(
        Box::new(Expr::Mul(Box::new(Expr::c(8.0)), Box::new(Expr::var("m")))),
        Box::new(Expr::Sub(Box::new(Expr::var("v")), Box::new(Expr::c(40.0)))),
    );
    let i_slow = Expr::Mul(
        Box::new(Expr::Mul(Box::new(Expr::c(0.5)), Box::new(Expr::var("h")))),
        Box::new(Expr::Add(Box::new(Expr::var("v")), Box::new(Expr::c(85.0)))),
    );
    let i_leak = Expr::Mul(
        Box::new(Expr::Mul(Box::new(Expr::c(0.05)), Box::new(Expr::var("n")))),
        Box::new(Expr::Add(Box::new(Expr::var("v")), Box::new(Expr::c(60.0)))),
    );
    Expr::Neg(Box::new(Expr::Add(
        Box::new(Expr::Add(Box::new(i_fast), Box::new(i_slow))),
        Box::new(i_leak),
    )))
}

/// Variable order used by all kernels.
pub const VARS: [&str; 4] = ["v", "m", "h", "n"];

fn model_exprs() -> Vec<Expr> {
    vec![
        v_rhs(),
        gate_rhs(gate_inf(-40.0, -6.0), gate_tau(0.1, 1.0, -50.0, 10.0), "m"),
        gate_rhs(gate_inf(-65.0, 7.0), gate_tau(4.0, 40.0, -60.0, 8.0), "h"),
        gate_rhs(
            gate_inf(-30.0, -9.0),
            gate_tau(10.0, 80.0, -40.0, 12.0),
            "n",
        ),
    ]
}

fn ranges() -> HashMap<&'static str, (f64, f64)> {
    HashMap::from([
        ("v", (-95.0, 60.0)),
        ("m", (0.0, 1.0)),
        ("h", (0.0, 1.0)),
        ("n", (0.0, 1.0)),
    ])
}

impl IonModel {
    pub fn new(lowering_degree: usize) -> IonModel {
        let exprs = model_exprs();
        let exact = exprs.iter().map(|e| Kernel::compile(e, &VARS)).collect();
        let r = ranges();
        let kernels = exprs
            .into_iter()
            .map(|e| Kernel::lower(e, &VARS, &r, lowering_degree))
            .collect();
        IonModel { kernels, exact }
    }

    /// Resting state.
    pub fn rest() -> [f64; STATE_DIM] {
        [-85.0, 0.0, 0.8, 0.1]
    }

    /// Derivatives via the lowered (rational-polynomial) kernels.
    pub fn rhs_lowered(&self, state: &[f64; STATE_DIM]) -> [f64; STATE_DIM] {
        let mut out = [0.0; STATE_DIM];
        for (i, k) in self.kernels.iter().enumerate() {
            out[i] = k.run(state);
        }
        out
    }

    /// Derivatives via the exact kernels (libm `exp`).
    pub fn rhs_exact(&self, state: &[f64; STATE_DIM]) -> [f64; STATE_DIM] {
        let mut out = [0.0; STATE_DIM];
        for (i, k) in self.exact.iter().enumerate() {
            out[i] = k.run(state);
        }
        out
    }

    /// Forward-Euler integrate one cell for `steps`, with a stimulus
    /// current in the first `stim_steps`.
    pub fn integrate(
        &self,
        dt: f64,
        steps: usize,
        stim: f64,
        stim_steps: usize,
        lowered: bool,
    ) -> [f64; STATE_DIM] {
        let mut s = Self::rest();
        for step in 0..steps {
            let mut d = if lowered {
                self.rhs_lowered(&s)
            } else {
                self.rhs_exact(&s)
            };
            if step < stim_steps {
                d[0] += stim;
            }
            for i in 0..STATE_DIM {
                s[i] += dt * d[i];
            }
            // Clamp gates to [0, 1] (physical invariant).
            for g in s.iter_mut().skip(1) {
                *g = g.clamp(0.0, 1.0);
            }
        }
        s
    }

    /// Flop counts (exact, lowered) per cell per RHS evaluation.
    pub fn flops(&self) -> (f64, f64) {
        (
            self.exact.iter().map(|k| k.flops()).sum(),
            self.kernels.iter().map(|k| k.flops()).sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rest_state_is_nearly_stationary() {
        let m = IonModel::new(8);
        let d = m.rhs_exact(&IonModel::rest());
        // Not exactly zero (simplified model) but slow.
        assert!(d[0].abs() < 5.0, "{:?}", d);
    }

    #[test]
    fn lowered_matches_exact_everywhere_reasonable() {
        let m = IonModel::new(10);
        let mut worst = 0.0f64;
        for vi in 0..60 {
            let v = -90.0 + 145.0 * vi as f64 / 59.0;
            let s = [v, 0.3, 0.6, 0.2];
            let a = m.rhs_exact(&s);
            let b = m.rhs_lowered(&s);
            for i in 0..STATE_DIM {
                worst = worst.max((a[i] - b[i]).abs() / (a[i].abs().max(1.0)));
            }
        }
        assert!(worst < 2e-2, "worst rel err {worst}");
    }

    #[test]
    fn stimulus_triggers_action_potential() {
        let m = IonModel::new(8);
        let dt = 0.02;
        let depolarised = m.integrate(dt, 400, 40.0, 100, false);
        assert!(
            depolarised[0] > -40.0,
            "no action potential: v = {}",
            depolarised[0]
        );
    }

    #[test]
    fn lowered_and_exact_trajectories_agree() {
        let m = IonModel::new(10);
        let dt = 0.02;
        let a = m.integrate(dt, 300, 30.0, 80, false);
        let b = m.integrate(dt, 300, 30.0, 80, true);
        assert!(
            (a[0] - b[0]).abs() < 1.0,
            "v diverged: {} vs {}",
            a[0],
            b[0]
        );
    }

    #[test]
    fn lowering_reduces_flops() {
        let m = IonModel::new(3);
        let (exact, lowered) = m.flops();
        assert!(lowered < exact, "lowered {lowered} >= exact {exact}");
    }

    #[test]
    fn gates_stay_in_unit_interval() {
        let m = IonModel::new(8);
        let s = m.integrate(0.02, 500, 40.0, 100, true);
        for g in &s[1..] {
            assert!((0.0..=1.0).contains(g));
        }
    }
}
