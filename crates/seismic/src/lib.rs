//! `seismic` — the SW4 / sw4lite stand-in (§4.9).
//!
//! SW4 solves the seismic wave equations in displacement formulation with
//! 4th-order finite differences. The iCoE work: port to C++, prototype
//! RAJA / OpenMP / CUDA in the sw4lite mini-app, win ~2x in the stencil
//! kernels via shared memory, accept ~30 % for RAJA portability, and run a
//! 26-billion-point Hayward-fault simulation on day one.
//!
//! This crate implements the Cartesian core of that code path:
//!
//! * [`operator::ElasticOperator`] — the 4th-order constant-coefficient
//!   elastic operator `L u = (lambda+mu) grad(div u) + mu lap(u)`;
//! * [`solver::WaveSolver`] — explicit 2nd-order time stepping with
//!   supergrid-style sponge damping and point sources;
//! * [`solver::KernelPath`] — the §4.9 programming-model menu (portable
//!   RAJA-style vs native vs native+shared-memory), all producing identical
//!   numerics but different simulated cost;
//! * [`scenario`] — Hayward-like point-source scenarios and peak-ground-
//!   velocity maps (Fig 7's data product).

pub mod dist;
pub mod operator;
pub mod scenario;
pub mod solver;

pub use dist::{node_throughput_ratio, run_time, step_time, DistRun};
pub use operator::ElasticOperator;
pub use solver::{KernelPath, WaveSolver};
