//! Ready-made earthquake scenarios.
//!
//! The production SW4 runs resolved magnitude-7.0 Hayward-fault ruptures
//! at 5 Hz on up to 200 billion grid points (§4.9, Fig 7). We have neither
//! the 3-D USGS velocity model nor 256 Sierra nodes, so the scenario here
//! is the synthetic equivalent: a shallow dipping line of point sources
//! with a rupture-propagation delay, on a domain sized to laptop memory.
//! The data product is the same — a peak-ground-velocity shake map.

use crate::operator::ElasticOperator;
use crate::solver::{PointSource, WaveSolver};

/// Parameters for a Hayward-like synthetic rupture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuptureScenario {
    /// Grid points per horizontal direction.
    pub n: usize,
    /// Grid spacing (km).
    pub h: f64,
    /// Number of sub-sources along the fault trace.
    pub segments: usize,
    /// Rupture propagation speed as a fraction of the S speed.
    pub rupture_fraction: f64,
}

impl Default for RuptureScenario {
    fn default() -> Self {
        RuptureScenario {
            n: 32,
            h: 0.5,
            segments: 6,
            rupture_fraction: 0.8,
        }
    }
}

impl RuptureScenario {
    /// Build a solver with the fault discretised as delayed point sources.
    pub fn build(&self) -> WaveSolver {
        // Crustal-ish properties (km, km/s, g/cm^3 scaled units).
        let (lambda, mu, rho) = (30.0, 30.0, 2.7);
        let op = ElasticOperator::new(self.n, self.n, self.n / 2 + 4, self.h, lambda, mu, rho);
        let dt = WaveSolver::stable_dt(&op);
        let cs = op.cs();
        let mut solver = WaveSolver::new(op, dt);
        solver.sponge_width = 4;
        let depth = solver.op.nz / 3 + 2;
        let j_mid = self.n / 2;
        for s in 0..self.segments {
            let i = 4 + s * (self.n - 8) / self.segments.max(1);
            let along = (i - 4) as f64 * self.h;
            let delay = along / (self.rupture_fraction * cs);
            solver.sources.push(PointSource {
                i,
                j: j_mid,
                k: depth,
                component: 1, // strike-slip-ish horizontal force
                amplitude: 50.0,
                t0: delay + 6.0 * dt,
                sigma: 4.0 * dt,
            });
        }
        solver
    }

    /// Run the scenario for `t_end` (in scenario time units) and return the
    /// PGV shake map (n x n, row-major).
    pub fn shake_map(&self, t_end: f64) -> Vec<f64> {
        let mut solver = self.build();
        let steps = (t_end / solver.dt).ceil() as usize;
        solver.run(steps);
        solver.pgv_map().to_vec()
    }
}

/// Simple ASCII rendering of a shake map (for examples): returns rows of
/// characters from calm '.' to strong shaking '#'.
pub fn render_ascii(map: &[f64], nx: usize, ny: usize) -> Vec<String> {
    let max = map.iter().copied().fold(0.0f64, f64::max).max(1e-30);
    let scale = [".", ":", "-", "=", "+", "*", "%", "#"];
    (0..nx)
        .map(|i| {
            (0..ny)
                .map(|j| {
                    // Square-root scaling: shaking spans orders of
                    // magnitude, linear scale would show only the peak.
                    let v = (map[i * ny + j] / max).sqrt();
                    let idx =
                        ((v * (scale.len() - 1) as f64).round() as usize).min(scale.len() - 1);
                    scale[idx]
                })
                .collect::<String>()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_produces_shaking() {
        let sc = RuptureScenario {
            n: 24,
            segments: 4,
            ..Default::default()
        };
        let solver = sc.build();
        let t_end = 20.0 * solver.dt;
        let map = sc.shake_map(t_end);
        assert_eq!(map.len(), 24 * 24);
        assert!(map.iter().any(|&v| v > 0.0), "no ground motion recorded");
    }

    #[test]
    fn shaking_strongest_near_fault_trace() {
        let sc = RuptureScenario {
            n: 24,
            segments: 4,
            ..Default::default()
        };
        let solver = sc.build();
        let map = sc.shake_map(40.0 * solver.dt);
        let n = 24;
        let j_mid = n / 2;
        let near: f64 = (0..n).map(|i| map[i * n + j_mid]).sum();
        let far: f64 = (0..n).map(|i| map[i * n + 1]).sum();
        assert!(near > far, "near {near} far {far}");
    }

    #[test]
    fn rupture_delay_increases_along_strike() {
        let sc = RuptureScenario::default();
        let solver = sc.build();
        let t0s: Vec<f64> = solver.sources.iter().map(|s| s.t0).collect();
        for w in t0s.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn ascii_rendering_has_right_shape() {
        let map = vec![0.0, 0.5, 1.0, 0.25];
        let rows = render_ascii(&map, 2, 2);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].chars().count(), 2);
        assert!(rows[1].contains('#'));
    }
}
