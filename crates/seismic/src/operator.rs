//! The 4th-order elastic operator on a Cartesian grid.
//!
//! Displacement formulation with constant Lamé parameters:
//! `rho u_tt = (lambda + mu) grad(div u) + mu lap(u) + F`.
//! All second derivatives use 4th-order central stencils; cross derivatives
//! use the tensor product of 4th-order first-derivative stencils. Fields
//! are stored component-major (SoA — the §4.6/§4.9 layout lesson).

use portal::View4;

/// 4th-order first-derivative stencil (offsets -2..=2, divided by h).
pub const D1: [f64; 5] = [1.0 / 12.0, -2.0 / 3.0, 0.0, 2.0 / 3.0, -1.0 / 12.0];
/// 4th-order second-derivative stencil (offsets -2..=2, divided by h^2).
pub const D2: [f64; 5] = [-1.0 / 12.0, 4.0 / 3.0, -5.0 / 2.0, 4.0 / 3.0, -1.0 / 12.0];

/// The elastic operator for an `n x n x n`-interior grid with spacing `h`.
#[derive(Debug, Clone)]
pub struct ElasticOperator {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    pub h: f64,
    pub lambda: f64,
    pub mu: f64,
    pub rho: f64,
}

impl ElasticOperator {
    pub fn new(nx: usize, ny: usize, nz: usize, h: f64, lambda: f64, mu: f64, rho: f64) -> Self {
        assert!(
            nx >= 5 && ny >= 5 && nz >= 5,
            "need at least 5 points per direction"
        );
        ElasticOperator {
            nx,
            ny,
            nz,
            h,
            lambda,
            mu,
            rho,
        }
    }

    pub fn view(&self) -> View4 {
        View4::new(3, self.nx, self.ny, self.nz)
    }

    pub fn npoints(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// P-wave speed.
    pub fn cp(&self) -> f64 {
        ((self.lambda + 2.0 * self.mu) / self.rho).sqrt()
    }

    /// S-wave speed.
    pub fn cs(&self) -> f64 {
        (self.mu / self.rho).sqrt()
    }

    /// Apply `out = L u` on interior points (2-wide halo left untouched).
    /// `u` and `out` are component-major fields of shape (3, nx, ny, nz).
    pub fn apply(&self, u: &[f64], out: &mut [f64]) {
        let v = self.view();
        assert_eq!(u.len(), v.len());
        assert_eq!(out.len(), v.len());
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let ih2 = 1.0 / (self.h * self.h);
        let lam_mu = self.lambda + self.mu;
        let mu = self.mu;
        let idx = |c: usize, i: usize, j: usize, k: usize| ((c * nx + i) * ny + j) * nz + k;

        for c in 0..3 {
            for i in 2..nx - 2 {
                for j in 2..ny - 2 {
                    for k in 2..nz - 2 {
                        // mu * laplacian(u_c)
                        let mut lap = 0.0;
                        for (o, d) in D2.iter().enumerate() {
                            let s = o as isize - 2;
                            lap += d * u[idx(c, (i as isize + s) as usize, j, k)];
                            lap += d * u[idx(c, i, (j as isize + s) as usize, k)];
                            lap += d * u[idx(c, i, j, (k as isize + s) as usize)];
                        }
                        // (lambda + mu) * d/dx_c (div u)
                        // = (lambda+mu) * sum_d d2 u_d / dx_c dx_d
                        let mut graddiv = 0.0;
                        for d in 0..3 {
                            if d == c {
                                let mut dd = 0.0;
                                for (o, w) in D2.iter().enumerate() {
                                    let s = o as isize - 2;
                                    let (ii, jj, kk) = shift(c, i, j, k, s);
                                    dd += w * u[idx(c, ii, jj, kk)];
                                }
                                graddiv += dd;
                            } else {
                                let mut cross = 0.0;
                                for (oa, wa) in D1.iter().enumerate() {
                                    if *wa == 0.0 {
                                        continue;
                                    }
                                    let sa = oa as isize - 2;
                                    for (ob, wb) in D1.iter().enumerate() {
                                        if *wb == 0.0 {
                                            continue;
                                        }
                                        let sb = ob as isize - 2;
                                        let (i1, j1, k1) = shift(c, i, j, k, sa);
                                        let (i2, j2, k2) = shift(d, i1, j1, k1, sb);
                                        cross += wa * wb * u[idx(d, i2, j2, k2)];
                                    }
                                }
                                graddiv += cross;
                            }
                        }
                        out[idx(c, i, j, k)] = ih2 * (mu * lap + lam_mu * graddiv);
                    }
                }
            }
        }
    }

    /// Flops per interior grid point of one apply (for cost profiles).
    pub fn flops_per_point() -> f64 {
        // 3 comps x (laplacian 30 + graddiv same-dir 10 + 2 cross terms
        // 16*3 each) ~= 3 * 136.
        3.0 * 136.0
    }

    /// Bytes read per interior point (stencil-reuse-naive estimate).
    pub fn bytes_read_per_point() -> f64 {
        // 3 comps x ~ (13 laplacian + 5 + 32 cross) unique loads x 8 B.
        3.0 * 50.0 * 8.0
    }
}

#[inline]
fn shift(axis: usize, i: usize, j: usize, k: usize, s: isize) -> (usize, usize, usize) {
    match axis {
        0 => ((i as isize + s) as usize, j, k),
        1 => (i, (j as isize + s) as usize, k),
        _ => (i, j, (k as isize + s) as usize),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fill a field with u_c(x,y,z) and return analytic L u at one interior
    /// point for the trig test field.
    fn trig_setup(op: &ElasticOperator) -> (Vec<f64>, impl Fn(usize, usize, usize, usize) -> f64) {
        let v = op.view();
        let mut u = vec![0.0; v.len()];
        let (a, b, c) = (1.1, 0.7, 0.9);
        let h = op.h;
        for comp in 0..3 {
            for i in 0..op.nx {
                for j in 0..op.ny {
                    for k in 0..op.nz {
                        let (x, y, z) = (i as f64 * h, j as f64 * h, k as f64 * h);
                        let val = match comp {
                            0 => (a * x).sin() * (b * y).cos() * (c * z).cos(),
                            1 => (a * x).cos() * (b * y).sin() * (c * z).cos(),
                            _ => (a * x).cos() * (b * y).cos() * (c * z).sin(),
                        };
                        u[v.idx(comp, i, j, k)] = val;
                    }
                }
            }
        }
        let (lambda, mu) = (op.lambda, op.mu);
        let exact = move |comp: usize, i: usize, j: usize, k: usize| -> f64 {
            let (x, y, z) = (i as f64 * h, j as f64 * h, k as f64 * h);
            // div u = (a+b+c) cos(ax)cos(by)cos(cz) =: s * C
            let s = a + b + c;
            match comp {
                0 => {
                    let u0 = (a * x).sin() * (b * y).cos() * (c * z).cos();
                    let lap = -(a * a + b * b + c * c) * u0;
                    // d/dx div u = -a s sin(ax)cos(by)cos(cz)
                    let gd = -a * s * (a * x).sin() * (b * y).cos() * (c * z).cos();
                    mu * lap + (lambda + mu) * gd
                }
                1 => {
                    let u1 = (a * x).cos() * (b * y).sin() * (c * z).cos();
                    let lap = -(a * a + b * b + c * c) * u1;
                    let gd = -b * s * (a * x).cos() * (b * y).sin() * (c * z).cos();
                    mu * lap + (lambda + mu) * gd
                }
                _ => {
                    let u2 = (a * x).cos() * (b * y).cos() * (c * z).sin();
                    let lap = -(a * a + b * b + c * c) * u2;
                    let gd = -c * s * (a * x).cos() * (b * y).cos() * (c * z).sin();
                    mu * lap + (lambda + mu) * gd
                }
            }
        };
        (u, exact)
    }

    #[test]
    fn operator_matches_analytic_on_trig_field() {
        let op = ElasticOperator::new(20, 20, 20, 0.05, 2.0, 1.0, 1.0);
        let (u, exact) = trig_setup(&op);
        let v = op.view();
        let mut lu = vec![0.0; v.len()];
        op.apply(&u, &mut lu);
        let mut max_err = 0.0f64;
        for comp in 0..3 {
            for i in 4..op.nx - 4 {
                for j in 4..op.ny - 4 {
                    for k in 4..op.nz - 4 {
                        let e = (lu[v.idx(comp, i, j, k)] - exact(comp, i, j, k)).abs();
                        max_err = max_err.max(e);
                    }
                }
            }
        }
        assert!(max_err < 2e-5, "{max_err}");
    }

    #[test]
    fn convergence_is_fourth_order() {
        let err_at = |n: usize| {
            let h = 1.0 / (n as f64 - 1.0);
            let op = ElasticOperator::new(n, n, n, h, 2.0, 1.0, 1.0);
            let (u, exact) = trig_setup(&op);
            let v = op.view();
            let mut lu = vec![0.0; v.len()];
            op.apply(&u, &mut lu);
            let mut max_err = 0.0f64;
            let mid = n / 2;
            for comp in 0..3 {
                let e = (lu[v.idx(comp, mid, mid, mid)] - exact(comp, mid, mid, mid)).abs();
                max_err = max_err.max(e);
            }
            max_err
        };
        let e1 = err_at(12);
        let e2 = err_at(24);
        let order = (e1 / e2).log2();
        assert!(order > 3.3, "observed order {order} (e1={e1}, e2={e2})");
    }

    #[test]
    fn wave_speeds() {
        let op = ElasticOperator::new(5, 5, 5, 1.0, 2.0, 1.0, 1.0);
        assert!((op.cp() - 2.0).abs() < 1e-12);
        assert!((op.cs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_field_maps_to_zero() {
        let op = ElasticOperator::new(8, 8, 8, 0.1, 2.0, 1.0, 1.0);
        let u = vec![0.0; op.view().len()];
        let mut lu = vec![1.0; op.view().len()];
        op.apply(&u, &mut lu);
        let v = op.view();
        for c in 0..3 {
            for i in 2..6 {
                for j in 2..6 {
                    for k in 2..6 {
                        assert_eq!(lu[v.idx(c, i, j, k)], 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn constant_field_is_annihilated() {
        let op = ElasticOperator::new(10, 10, 10, 0.1, 2.0, 1.0, 1.0);
        let u = vec![3.5; op.view().len()];
        let mut lu = vec![0.0; op.view().len()];
        op.apply(&u, &mut lu);
        let v = op.view();
        for c in 0..3 {
            assert!(lu[v.idx(c, 5, 5, 5)].abs() < 1e-12);
        }
    }
}
