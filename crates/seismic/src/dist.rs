//! Multi-node SW4: domain decomposition and the Hayward-class runs.
//!
//! §4.9: the verification run used 26 billion grid points on 256
//! GPU-equipped nodes in 10 hours, matching Cori-II's time for the same
//! computation; production studies reach 200 billion points; the abstract
//! claims up to 14x throughput over Cori. This module prices those runs:
//! per-step cost = the node's stencil kernels (4 GPUs, shared-memory
//! path) + halo exchange with neighbours + a stability-bounded step count.

use hetsim::{CollectiveKind, Machine, Network, Target};

use crate::operator::ElasticOperator;
use crate::solver::KernelPath;

/// A distributed run configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistRun {
    /// Total grid points.
    pub total_points: f64,
    /// Nodes used.
    pub nodes: usize,
    /// Timesteps to run.
    pub steps: f64,
}

impl DistRun {
    /// The §4.9 verification run: 26 billion points, 256 nodes, 5 Hz.
    pub fn hayward_verification() -> DistRun {
        DistRun {
            total_points: 26.0e9,
            nodes: 256,
            steps: 40_000.0,
        }
    }

    /// Points per node.
    pub fn points_per_node(&self) -> f64 {
        self.total_points / self.nodes as f64
    }

    /// Halo bytes exchanged per node per step: 6 faces of a cubic block,
    /// 2-deep (4th-order stencil), 3 components, f64.
    pub fn halo_bytes_per_node(&self) -> f64 {
        let side = self.points_per_node().cbrt();
        6.0 * side * side * 2.0 * 3.0 * 8.0
    }
}

/// Per-step simulated seconds on one node of `machine` for `run`.
pub fn step_time(machine: &Machine, run: &DistRun, path: KernelPath) -> f64 {
    let side = run.points_per_node().cbrt().max(8.0) as usize;
    let op = ElasticOperator::new(side.max(5), side.max(5), side.max(5), 1.0, 2.0, 1.0, 1.0);
    let sim = hetsim::Sim::new(machine.clone());
    // Kernel cost on the node: GPUs split the block; CPUs share it.
    let compute = match path {
        KernelPath::HostThreads(t) => sim.cost(Target::cpu(t), &path.profile(&op)),
        KernelPath::HostSerial => sim.cost(Target::cpu(1), &path.profile(&op)),
        _ => {
            let gpus = machine.node.gpu_count().max(1);
            let quarter = ElasticOperator::new(
                side.max(5),
                side.max(5),
                (side / gpus).max(5),
                1.0,
                2.0,
                1.0,
                1.0,
            );
            sim.cost(Target::gpu(0), &path.profile(&quarter))
        }
    };
    // Halo exchange with up to 6 neighbours (overlappable in principle;
    // the paper overlapped communication with computation, so charge the
    // max of the two rather than the sum once the block is large).
    let net = Network::new(machine.network.clone(), run.nodes);
    let halo = net.p2p(run.halo_bytes_per_node() / 6.0) * 6.0;
    if run.points_per_node() > 1e7 {
        compute.max(halo)
    } else {
        compute + halo
    }
}

/// Whole-run wall-clock (seconds).
pub fn run_time(machine: &Machine, run: &DistRun, path: KernelPath) -> f64 {
    step_time(machine, run, path) * run.steps
}

/// Strong-scaling curve: same problem, growing node counts.
pub fn strong_scaling(
    machine: &Machine,
    base: &DistRun,
    node_counts: &[usize],
) -> Vec<(usize, f64)> {
    node_counts
        .iter()
        .map(|&n| {
            let run = DistRun { nodes: n, ..*base };
            (n, run_time(machine, &run, KernelPath::NativeShared))
        })
        .collect()
}

/// The throughput comparison of the abstract: points-steps/second per
/// node-hour, Sierra vs Cori-II.
pub fn node_throughput_ratio() -> f64 {
    let run = DistRun {
        total_points: 1.0e9,
        nodes: 8,
        steps: 1.0,
    };
    let sierra = step_time(
        &hetsim::machines::sierra_node(),
        &run,
        KernelPath::NativeShared,
    );
    let cori = step_time(
        &hetsim::machines::cori2(),
        &run,
        KernelPath::HostThreads(68),
    );
    cori / sierra
}

/// Multi-node allreduce used for stability checks / norms once per N
/// steps (cheap but must not be forgotten in the model).
pub fn norm_check_time(machine: &Machine, nodes: usize) -> f64 {
    Network::new(machine.network.clone(), nodes).collective(CollectiveKind::AllReduce, 8.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::machines;

    #[test]
    fn hayward_run_is_hours_scale() {
        // Paper: ~10 hours on 256 nodes. Our kernel model covers only the
        // interior stencil (no supergrid/attenuation/source/IO work), so
        // we land under the paper but must stay in the same regime:
        // minutes-to-days, not seconds or years.
        let run = DistRun::hayward_verification();
        let t = run_time(&machines::sierra_node(), &run, KernelPath::NativeShared);
        let hours = t / 3600.0;
        assert!(hours > 0.05 && hours < 100.0, "{hours} h");
        // And Cori-II needs node-for-node an order of magnitude longer.
        let t_cori = run_time(&machines::cori2(), &run, KernelPath::HostThreads(68));
        assert!(t_cori / t > 5.0, "{}", t_cori / t);
    }

    #[test]
    fn throughput_ratio_matches_abstract_band() {
        // Abstract: "up to a 14X throughput increase over Cori".
        let r = node_throughput_ratio();
        assert!(r > 8.0 && r < 25.0, "{r}");
    }

    #[test]
    fn strong_scaling_is_monotone_but_sublinear() {
        let base = DistRun {
            total_points: 4.0e9,
            nodes: 16,
            steps: 100.0,
        };
        let curve = strong_scaling(&machines::sierra_node(), &base, &[16, 64, 256, 1024]);
        for w in curve.windows(2) {
            assert!(w[1].1 < w[0].1, "more nodes must not be slower: {curve:?}");
        }
        let speedup = curve[0].1 / curve[3].1;
        let ideal = 1024.0 / 16.0;
        assert!(speedup < ideal, "{speedup} vs ideal {ideal}");
        assert!(speedup > 0.15 * ideal, "scaling collapsed: {speedup}");
    }

    #[test]
    fn weak_scaling_step_time_is_flat() {
        // Fixed points/node: step time should barely change with nodes.
        let t64 = step_time(
            &machines::sierra_node(),
            &DistRun {
                total_points: 64.0 * 1e8,
                nodes: 64,
                steps: 1.0,
            },
            KernelPath::NativeShared,
        );
        let t1024 = step_time(
            &machines::sierra_node(),
            &DistRun {
                total_points: 1024.0 * 1e8,
                nodes: 1024,
                steps: 1.0,
            },
            KernelPath::NativeShared,
        );
        assert!((t1024 / t64 - 1.0).abs() < 0.15, "{t64} vs {t1024}");
    }

    #[test]
    fn halo_shrinks_relative_to_volume_with_block_size() {
        let small = DistRun {
            total_points: 1e7 * 8.0,
            nodes: 8,
            steps: 1.0,
        };
        let big = DistRun {
            total_points: 1e9 * 8.0,
            nodes: 8,
            steps: 1.0,
        };
        let ratio_small = small.halo_bytes_per_node() / (small.points_per_node() * 8.0);
        let ratio_big = big.halo_bytes_per_node() / (big.points_per_node() * 8.0);
        assert!(ratio_big < ratio_small);
    }
}
