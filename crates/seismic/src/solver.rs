//! Explicit time stepping, kernel-path cost accounting, and sources.

use hetsim::{KernelProfile, Sim, Target};
use portal::Backend;

use crate::operator::ElasticOperator;

/// Which implementation of the stencil kernels runs (§4.9's menu). All
/// paths compute identical numerics; they differ in simulated cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// RAJA-style portable kernels on the device.
    Portal,
    /// Hand-written CUDA, plain global-memory loads.
    Native,
    /// Hand-written CUDA staging tiles through shared memory (the 2x win).
    NativeShared,
    /// Host OpenMP-style threads.
    HostThreads(usize),
    /// Serial host (the Cori-style baseline runs many MPI ranks of this).
    HostSerial,
}

impl KernelPath {
    /// Cost profile of one operator application for `op`.
    pub fn profile(&self, op: &ElasticOperator) -> KernelProfile {
        let n = op.npoints() as f64;
        let k = KernelProfile::new("sw4-rhs")
            .flops(ElasticOperator::flops_per_point() * n)
            .bytes_read(ElasticOperator::bytes_read_per_point() * n)
            .bytes_written(3.0 * 8.0 * n)
            .parallelism(n);
        match self {
            KernelPath::NativeShared => k.shared_mem(true),
            _ => k,
        }
    }

    /// Simulated seconds for one operator apply + time update, charged to
    /// `sim`.
    pub fn charge(&self, sim: &mut Sim, op: &ElasticOperator) -> f64 {
        let profile = self.profile(op);
        let n = op.npoints() as f64;
        let update = KernelProfile::new("sw4-update")
            .flops(9.0 * n)
            .bytes_read(9.0 * 8.0 * n)
            .bytes_written(3.0 * 8.0 * n)
            .parallelism(n);
        let (target, backend) = match self {
            KernelPath::Portal => (Target::gpu(0), Backend::Portal),
            KernelPath::Native | KernelPath::NativeShared => (Target::gpu(0), Backend::Native),
            KernelPath::HostThreads(t) => (Target::cpu(*t), Backend::Native),
            KernelPath::HostSerial => (Target::cpu(1), Backend::Native),
        };
        let penalty = match backend {
            Backend::Portal => 1.3,
            Backend::Native => 1.0,
        };
        let t = sim.launch(target, &profile) * penalty + sim.launch(target, &update);
        sim.advance(
            target,
            t - sim.cost(target, &profile) - sim.cost(target, &update),
        );
        t
    }
}

/// A point source with a Gaussian source-time function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointSource {
    pub i: usize,
    pub j: usize,
    pub k: usize,
    /// Component the force acts on.
    pub component: usize,
    pub amplitude: f64,
    /// Centre time of the pulse.
    pub t0: f64,
    /// Pulse width.
    pub sigma: f64,
}

impl PointSource {
    pub fn value(&self, t: f64) -> f64 {
        let arg = (t - self.t0) / self.sigma;
        self.amplitude * (-0.5 * arg * arg).exp()
    }
}

/// Explicit 2nd-order (leapfrog) wave solver with sponge-layer damping
/// (SW4's supergrid far-field treatment, simplified).
pub struct WaveSolver {
    pub op: ElasticOperator,
    pub dt: f64,
    pub sources: Vec<PointSource>,
    /// Sponge width in grid points (0 disables damping).
    pub sponge_width: usize,
    /// u at time n and n-1; component-major.
    u: Vec<f64>,
    u_prev: Vec<f64>,
    lu: Vec<f64>,
    t: f64,
    steps: u64,
    /// Running peak |velocity| at the free surface (k = 2 plane).
    pgv: Vec<f64>,
}

impl WaveSolver {
    /// CFL-safe timestep factor for the 4th-order stencil.
    pub fn stable_dt(op: &ElasticOperator) -> f64 {
        0.5 * op.h / op.cp() / 3.0f64.sqrt()
    }

    pub fn new(op: ElasticOperator, dt: f64) -> WaveSolver {
        let len = op.view().len();
        let pgv = vec![0.0; op.nx * op.ny];
        WaveSolver {
            op,
            dt,
            sources: Vec::new(),
            sponge_width: 0,
            u: vec![0.0; len],
            u_prev: vec![0.0; len],
            lu: vec![0.0; len],
            t: 0.0,
            steps: 0,
            pgv,
        }
    }

    pub fn time(&self) -> f64 {
        self.t
    }

    pub fn steps(&self) -> u64 {
        self.steps
    }

    pub fn displacement(&self) -> &[f64] {
        &self.u
    }

    /// Peak ground velocity map over the k=2 plane (Fig 7's data product).
    pub fn pgv_map(&self) -> &[f64] {
        &self.pgv
    }

    /// Total (discrete) energy proxy: kinetic + a stiffness term.
    pub fn energy(&self) -> f64 {
        let idt = 1.0 / self.dt;
        self.u
            .iter()
            .zip(&self.u_prev)
            .map(|(a, b)| {
                let v = (a - b) * idt;
                0.5 * self.op.rho * v * v
            })
            .sum()
    }

    /// Advance one step.
    pub fn step(&mut self) {
        let v = self.op.view();
        self.op.apply(&self.u, &mut self.lu);
        let dt2 = self.dt * self.dt;
        let inv_rho = 1.0 / self.op.rho;
        let t_mid = self.t;
        // Leapfrog update into u_prev (which becomes u_next).
        for idx in 0..self.u.len() {
            let acc = self.lu[idx] * inv_rho;
            let next = 2.0 * self.u[idx] - self.u_prev[idx] + dt2 * acc;
            self.u_prev[idx] = next;
        }
        // Point sources.
        for s in &self.sources {
            let idx = v.idx(s.component, s.i, s.j, s.k);
            self.u_prev[idx] += dt2 * s.value(t_mid) * inv_rho;
        }
        // Sponge damping near boundaries.
        if self.sponge_width > 0 {
            let w = self.sponge_width;
            let (nx, ny, nz) = (self.op.nx, self.op.ny, self.op.nz);
            for c in 0..3 {
                for i in 0..nx {
                    for j in 0..ny {
                        for k in 0..nz {
                            let d = i
                                .min(nx - 1 - i)
                                .min(j.min(ny - 1 - j))
                                .min(k.min(nz - 1 - k));
                            if d < w {
                                let taper = 1.0 - 0.08 * ((w - d) as f64 / w as f64).powi(2);
                                self.u_prev[v.idx(c, i, j, k)] *= taper;
                            }
                        }
                    }
                }
            }
        }
        std::mem::swap(&mut self.u, &mut self.u_prev);
        // PGV at surface.
        let idt = 1.0 / self.dt;
        for i in 0..self.op.nx {
            for j in 0..self.op.ny {
                let mut vmag2 = 0.0;
                for c in 0..3 {
                    let idx = v.idx(c, i, j, 2.min(self.op.nz - 1));
                    let vel = (self.u[idx] - self.u_prev[idx]) * idt;
                    vmag2 += vel * vel;
                }
                let slot = &mut self.pgv[i * self.op.ny + j];
                *slot = slot.max(vmag2.sqrt());
            }
        }
        self.t += self.dt;
        self.steps += 1;
    }

    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// [`run`](Self::run), instrumented: the whole sweep is one `Phase`
    /// span, per-step traffic lands in `sw4.*` counters, and the energy
    /// proxy is published as a gauge (free with a no-op recorder).
    pub fn run_traced(&mut self, rec: &hetsim::obs::Recorder, steps: usize) {
        let span = rec.begin("sw4:leapfrog", hetsim::obs::SpanKind::Phase);
        self.run(steps);
        if rec.is_enabled() {
            rec.incr("sw4.steps", steps as f64);
            rec.incr("sw4.point_updates", steps as f64 * self.u.len() as f64);
            rec.gauge("sw4.energy", self.energy());
        }
        rec.end(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::machines;

    fn small_op() -> ElasticOperator {
        ElasticOperator::new(24, 24, 24, 0.1, 2.0, 1.0, 1.0)
    }

    fn solver_with_source() -> WaveSolver {
        let op = small_op();
        let dt = WaveSolver::stable_dt(&op);
        let mut s = WaveSolver::new(op, dt);
        s.sources.push(PointSource {
            i: 12,
            j: 12,
            k: 12,
            component: 2,
            amplitude: 1.0,
            t0: 5.0 * dt,
            sigma: 3.0 * dt,
        });
        s
    }

    #[test]
    fn pulse_propagates_outward() {
        let mut s = solver_with_source();
        s.run(30);
        let v = s.op.view();
        // Displacement is nonzero away from the source after 30 steps.
        let near = s.displacement()[v.idx(2, 12, 12, 12)].abs();
        let far = s.displacement()[v.idx(2, 12, 12, 16)].abs();
        assert!(near > 0.0);
        assert!(far > 0.0, "wave has not reached radius 4");
    }

    #[test]
    fn wavefront_travels_at_p_speed() {
        let op = ElasticOperator::new(40, 9, 9, 0.1, 2.0, 1.0, 1.0);
        let dt = WaveSolver::stable_dt(&op);
        let mut s = WaveSolver::new(op, dt);
        s.sources.push(PointSource {
            i: 4,
            j: 4,
            k: 4,
            component: 0,
            amplitude: 10.0,
            t0: 4.0 * dt,
            sigma: 2.0 * dt,
        });
        let steps = 60;
        s.run(steps);
        let v = s.op.view();
        // Find the furthest x-index where |u_0| exceeds a threshold.
        let mut front = 4usize;
        for i in 4..s.op.nx - 2 {
            if s.displacement()[v.idx(0, i, 4, 4)].abs() > 1e-6 {
                front = i;
            }
        }
        let dist = (front - 4) as f64 * s.op.h;
        let t = steps as f64 * dt;
        let cp = s.op.cp();
        // Front within [0.5, 1.3] x cp * t (discrete front is fuzzy).
        assert!(
            dist > 0.4 * cp * t && dist < 1.4 * cp * t,
            "dist {dist}, cp*t {}",
            cp * t
        );
    }

    #[test]
    fn energy_stays_bounded_without_damping() {
        let mut s = solver_with_source();
        s.run(20);
        let e20 = s.energy();
        s.run(80);
        let e100 = s.energy();
        assert!(e100.is_finite());
        assert!(
            e100 < 100.0 * e20.max(1e-30),
            "instability: {e20} -> {e100}"
        );
    }

    #[test]
    fn sponge_damps_energy() {
        let mut a = solver_with_source();
        let mut b = solver_with_source();
        b.sponge_width = 6;
        a.run(120);
        b.run(120);
        assert!(b.energy() < a.energy());
    }

    #[test]
    fn pgv_is_monotone_nonnegative() {
        let mut s = solver_with_source();
        s.run(25);
        let snapshot: Vec<f64> = s.pgv_map().to_vec();
        s.run(25);
        for (before, after) in snapshot.iter().zip(s.pgv_map()) {
            assert!(after >= before);
            assert!(*before >= 0.0);
        }
    }

    #[test]
    fn shared_memory_path_is_fastest_device_path() {
        let op = ElasticOperator::new(64, 64, 64, 0.01, 2.0, 1.0, 1.0);
        let mut sim = Sim::new(machines::sierra_node());
        let t_portal = KernelPath::Portal.charge(&mut sim, &op);
        let t_native = KernelPath::Native.charge(&mut sim, &op);
        let t_shared = KernelPath::NativeShared.charge(&mut sim, &op);
        assert!(t_shared < t_native, "{t_shared} vs {t_native}");
        assert!(t_native < t_portal, "{t_native} vs {t_portal}");
        // §4.9: shared memory bought ~2x on the stencils; RAJA cost ~30 %.
        let shared_gain = t_native / t_shared;
        assert!(shared_gain > 1.5 && shared_gain < 2.1, "{shared_gain}");
        let raja_penalty = t_portal / t_native;
        assert!(raja_penalty > 1.2 && raja_penalty < 1.4, "{raja_penalty}");
    }

    #[test]
    fn traced_run_publishes_phase_span_and_counters() {
        let rec = hetsim::obs::Recorder::enabled();
        let mut s = solver_with_source();
        s.run_traced(&rec, 10);
        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "sw4:leapfrog");
        assert_eq!(spans[0].kind, hetsim::obs::SpanKind::Phase);
        assert_eq!(rec.counter("sw4.steps"), 10.0);
        assert!(rec.gauge_value("sw4.energy").is_some());
    }

    #[test]
    fn cfl_dt_is_stable_slightly_larger_is_not_guaranteed() {
        let op = small_op();
        let dt = WaveSolver::stable_dt(&op);
        assert!(dt > 0.0 && dt < op.h / op.cp());
    }
}
