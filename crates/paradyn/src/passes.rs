//! The two compiler passes added to the XL Fortran compiler (§4.8).

use std::collections::HashSet;

use crate::ir::Program;

/// SLNSP grouping: assign consecutive loops to one fusion group whenever
/// doing so is legal — loop L may join the current group if it does not
/// read any array that a loop *later in the group would still need* from
/// memory... For elementwise loops over the same index space, fusion is
/// always legal (each iteration i only touches element i), so SLNSP groups
/// every maximal run of loops. Returns the per-loop group tags for
/// [`crate::machine::run`].
pub fn slnsp_fuse(prog: &Program) -> Vec<usize> {
    // All loops share the trip count by construction, and elementwise
    // dependencies are index-aligned: one big group.
    vec![0; prog.loops.len()]
}

/// Dead-store elimination using privatisation information: an array
/// written inside a fusion group whose value is (a) not live-out and (b)
/// not read by any *later* group can stay in registers — its store is
/// elided. Returns the set of arrays whose stores are eliminated.
pub fn dead_store_elimination(prog: &Program, groups: &[usize]) -> HashSet<usize> {
    assert_eq!(groups.len(), prog.loops.len());
    let live_out: HashSet<usize> = prog.live_out.iter().copied().collect();
    let mut elide = HashSet::new();
    for (li, l) in prog.loops.iter().enumerate() {
        if live_out.contains(&l.writes) {
            continue;
        }
        // Is this array read by any loop in a *different, later* group?
        let mut read_later_outside = false;
        for (lj, other) in prog.loops.iter().enumerate().skip(li + 1) {
            if groups[lj] == groups[li] {
                continue; // same group: register-resident anyway
            }
            let mut reads = Vec::new();
            other.expr.reads(&mut reads);
            if reads.contains(&l.writes) {
                read_later_outside = true;
                break;
            }
        }
        if !read_later_outside {
            elide.insert(l.writes);
        }
    }
    elide
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Expr, Loop};
    use crate::machine::{run, run_baseline};

    #[test]
    fn slnsp_groups_everything() {
        let p = Program::paradyn_kernel(16);
        assert_eq!(slnsp_fuse(&p), vec![0; 8]);
    }

    #[test]
    fn dse_spares_live_out_and_cross_group_arrays() {
        let p = Program {
            n: 4,
            n_arrays: 4,
            loops: vec![
                Loop {
                    writes: 1,
                    expr: Expr::load(0),
                },
                Loop {
                    writes: 2,
                    expr: Expr::load(1),
                },
                Loop {
                    writes: 3,
                    expr: Expr::load(2),
                },
            ],
            live_out: vec![3],
        };
        // Two groups: {0, 1} and {2}. Array 2 crosses the group boundary,
        // so its store must stay; array 1 is group-internal: elided.
        let groups = vec![0, 0, 1];
        let elide = dead_store_elimination(&p, &groups);
        assert!(elide.contains(&1));
        assert!(!elide.contains(&2));
        assert!(!elide.contains(&3));
    }

    #[test]
    fn optimisation_pipeline_preserves_semantics() {
        let p = Program::paradyn_kernel(64);
        let inputs: Vec<(usize, Vec<f64>)> = (0..3)
            .map(|a| {
                (
                    a,
                    (0..64)
                        .map(|i| ((i * (a + 2)) % 7) as f64 * 0.5 - 1.0)
                        .collect(),
                )
            })
            .collect();
        let (base_arrays, base) = run_baseline(&p, &inputs);
        let groups = slnsp_fuse(&p);
        let elide = dead_store_elimination(&p, &groups);
        let (opt_arrays, opt) = run(&p, &inputs, &groups, &elide);
        for &a in &p.live_out {
            assert_eq!(base_arrays[a], opt_arrays[a]);
        }
        assert!(opt.memory_ops() < base.memory_ops());
    }

    #[test]
    fn fig6_shape_slnsp_2x_and_dse_20_percent_more() {
        let p = Program::paradyn_kernel(100_000);
        let inputs: Vec<(usize, Vec<f64>)> = (0..3)
            .map(|a| (a, (0..100_000).map(|i| ((i + a) % 13) as f64).collect()))
            .collect();
        let (_, base) = run_baseline(&p, &inputs);
        let groups = slnsp_fuse(&p);
        let (_, fused) = run(&p, &inputs, &groups, &std::collections::HashSet::new());
        let elide = dead_store_elimination(&p, &groups);
        let (_, full) = run(&p, &inputs, &groups, &elide);

        let bw = 900e9;
        let t_base = base.time(bw);
        let t_slnsp = fused.time(bw);
        let t_full = full.time(bw);
        // SLNSP ~2x (time tracks the load reduction).
        let slnsp_gain = t_base / t_slnsp;
        assert!(
            slnsp_gain > 1.6 && slnsp_gain < 2.5,
            "SLNSP gain {slnsp_gain}"
        );
        let load_ratio = base.loads as f64 / fused.loads as f64;
        assert!(
            (slnsp_gain / load_ratio - 1.0).abs() < 0.6,
            "time gain {slnsp_gain} should roughly track load ratio {load_ratio}"
        );
        // DSE: a further ~20 %.
        let dse_gain = t_slnsp / t_full;
        assert!(dse_gain > 1.1 && dse_gain < 1.6, "DSE gain {dse_gain}");
    }

    #[test]
    fn dse_alone_never_changes_live_out() {
        let p = Program::paradyn_kernel(32);
        let _inputs: Vec<(usize, Vec<f64>)> =
            (0..3).map(|a| (a, vec![a as f64 + 0.5; 32])).collect();
        let groups: Vec<usize> = (0..p.loops.len()).collect(); // unfused
        let elide = dead_store_elimination(&p, &groups);
        // Unfused: every intermediate is read by a later group, so nothing
        // can be elided (except trailing dead writes, of which there are
        // none here).
        assert!(elide.is_empty(), "{elide:?}");
    }
}
