//! `paradyn` — the ParaDyn compiler study (§4.8, Fig 6).
//!
//! ParaDyn "contains many small loops" that stay cache-resident on CPUs
//! but are launch- and bandwidth-bound on GPUs. Hand-merging the loops
//! helped the GPU and hurt the CPU, so the team added two components to
//! the IBM XL Fortran compiler instead:
//!
//! 1. **SLNSP** (Single Level No Synchronization Parallelism): each thread
//!    executes exactly one iteration of *each* loop, so "traditional data
//!    flow based optimization can work across different loops without
//!    explicit loop fusion" — intermediate values stay in registers;
//! 2. **private-clause-informed dead-store elimination**: privatised
//!    temporaries that are never live-out stop being stored at all.
//!
//! Fig 6 shows ~2x from SLNSP (matching the drop in loads) plus ~20 % more
//! from dead-store elimination. This crate implements a small loop IR
//! ([`ir`]), the two optimisation passes ([`passes`]), and an abstract
//! machine ([`machine`]) that both *executes* programs (so tests prove the
//! passes preserve semantics) and counts global loads/stores (so the
//! figure can be regenerated).

pub mod ir;
pub mod machine;
pub mod passes;

pub use ir::{Expr, Loop, Program};
pub use machine::{run, ExecStats};
pub use passes::{dead_store_elimination, slnsp_fuse};
