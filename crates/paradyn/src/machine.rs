//! The abstract machine: executes programs for real and counts global
//! memory traffic (the NVProf load/store measurement of Fig 6).

use std::collections::HashSet;

use crate::ir::{Expr, Program};

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Global-memory loads (array-element reads that miss registers).
    pub loads: u64,
    /// Global-memory stores.
    pub stores: u64,
    /// Arithmetic operations.
    pub flops: u64,
}

impl ExecStats {
    pub fn memory_ops(&self) -> u64 {
        self.loads + self.stores
    }

    /// Simulated kernel time (seconds) on a bandwidth-bound device:
    /// memory ops dominate, as Fig 6's time-tracks-loads result shows.
    pub fn time(&self, bytes_per_s: f64) -> f64 {
        self.memory_ops() as f64 * 8.0 / bytes_per_s
    }
}

/// The CPU-side cache model behind §4.8's observation that hand-merging
/// loops "significantly decreased CPU performance": the original small
/// loops work on a data subset that stays cache-resident *across loops*,
/// so their effective bandwidth is the cache's; the merged loop streams
/// the union of all arrays per iteration group and spills once the
/// working set exceeds the cache.
pub fn cpu_time(
    stats: &ExecStats,
    working_set_bytes: f64,
    cache_bytes: f64,
    cache_bw: f64,
    dram_bw: f64,
) -> f64 {
    let bw = if working_set_bytes <= cache_bytes {
        cache_bw
    } else {
        dram_bw
    };
    stats.memory_ops() as f64 * 8.0 / bw
}

fn eval(e: &Expr, arrays: &[Vec<f64>], i: usize, registers: &[bool], stats: &mut ExecStats) -> f64 {
    match e {
        Expr::Load(a) => {
            if !registers[*a] {
                stats.loads += 1;
            }
            arrays[*a][i]
        }
        Expr::Const(v) => *v,
        Expr::Index => i as f64,
        Expr::Add(a, b) => {
            stats.flops += 1;
            eval(a, arrays, i, registers, stats) + eval(b, arrays, i, registers, stats)
        }
        Expr::Sub(a, b) => {
            stats.flops += 1;
            eval(a, arrays, i, registers, stats) - eval(b, arrays, i, registers, stats)
        }
        Expr::Mul(a, b) => {
            stats.flops += 1;
            eval(a, arrays, i, registers, stats) * eval(b, arrays, i, registers, stats)
        }
    }
}

/// Execute `prog` on `inputs` (indexed by array id; missing arrays start
/// zeroed). Returns (final arrays, stats).
///
/// Register modelling: within one *fusion group* (loops carrying the same
/// `group` tag — see [`crate::passes::slnsp_fuse`]), an array written
/// earlier in the group is register-resident for later reads at the same
/// index. This is exactly what SLNSP enables. In the unfused program every
/// loop is its own group, so every read is a global load.
pub fn run(
    prog: &Program,
    inputs: &[(usize, Vec<f64>)],
    groups: &[usize],
    elided_stores: &HashSet<usize>,
) -> (Vec<Vec<f64>>, ExecStats) {
    assert_eq!(groups.len(), prog.loops.len(), "one group tag per loop");
    let mut arrays = vec![vec![0.0; prog.n]; prog.n_arrays];
    for (id, data) in inputs {
        assert_eq!(data.len(), prog.n);
        arrays[*id] = data.clone();
    }
    let mut stats = ExecStats::default();
    let mut li = 0usize;
    while li < prog.loops.len() {
        // Extent of the current fusion group.
        let group = groups[li];
        let mut hi = li;
        while hi < prog.loops.len() && groups[hi] == group {
            hi += 1;
        }
        // Execute the group loop-by-loop (semantics) but count registers
        // per group (performance).
        let mut registers = vec![false; prog.n_arrays];
        for l in li..hi {
            let lp = &prog.loops[l];
            for i in 0..prog.n {
                let v = eval(&lp.expr, &arrays, i, &registers, &mut stats);
                arrays[lp.writes][i] = v;
            }
            if !elided_stores.contains(&lp.writes) {
                stats.stores += prog.n as u64;
            }
            registers[lp.writes] = true;
        }
        li = hi;
    }
    (arrays, stats)
}

/// Convenience: run without any optimisation (each loop its own group,
/// all stores real).
pub fn run_baseline(prog: &Program, inputs: &[(usize, Vec<f64>)]) -> (Vec<Vec<f64>>, ExecStats) {
    let groups: Vec<usize> = (0..prog.loops.len()).collect();
    run(prog, inputs, &groups, &HashSet::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Loop;

    fn tiny() -> (Program, Vec<(usize, Vec<f64>)>) {
        let prog = Program {
            n: 4,
            n_arrays: 3,
            loops: vec![
                Loop {
                    writes: 1,
                    expr: Expr::load(0).mul(Expr::c(2.0)),
                },
                Loop {
                    writes: 2,
                    expr: Expr::load(1).add(Expr::c(1.0)),
                },
            ],
            live_out: vec![2],
        };
        let inputs = vec![(0usize, vec![1.0, 2.0, 3.0, 4.0])];
        (prog, inputs)
    }

    #[test]
    fn baseline_computes_correct_values() {
        let (prog, inputs) = tiny();
        let (arrays, stats) = run_baseline(&prog, &inputs);
        assert_eq!(arrays[2], vec![3.0, 5.0, 7.0, 9.0]);
        // Loads: 4 (loop 1) + 4 (loop 2); stores: 8.
        assert_eq!(stats.loads, 8);
        assert_eq!(stats.stores, 8);
    }

    #[test]
    fn fused_group_keeps_intermediate_in_registers() {
        let (prog, inputs) = tiny();
        let (arrays, stats) = run(&prog, &inputs, &[0, 0], &HashSet::new());
        assert_eq!(arrays[2], vec![3.0, 5.0, 7.0, 9.0]);
        // Loop 2's read of array 1 is now register-resident.
        assert_eq!(stats.loads, 4);
        assert_eq!(stats.stores, 8);
    }

    #[test]
    fn elided_store_skips_memory_but_keeps_value_for_group() {
        let (prog, inputs) = tiny();
        let elide: HashSet<usize> = [1usize].into_iter().collect();
        let (arrays, stats) = run(&prog, &inputs, &[0, 0], &elide);
        assert_eq!(arrays[2], vec![3.0, 5.0, 7.0, 9.0]);
        assert_eq!(stats.stores, 4);
    }

    #[test]
    fn index_expression_works() {
        let prog = Program {
            n: 3,
            n_arrays: 1,
            loops: vec![Loop {
                writes: 0,
                expr: Expr::Index.mul(Expr::c(3.0)),
            }],
            live_out: vec![0],
        };
        let (arrays, _) = run_baseline(&prog, &[]);
        assert_eq!(arrays[0], vec![0.0, 3.0, 6.0]);
    }
}

#[cfg(test)]
mod cpu_model_tests {
    use super::*;
    use crate::ir::Program;
    use crate::passes::slnsp_fuse;

    /// The §4.8 CPU observation: hand-merged loops lose on the CPU when
    /// the merged working set spills the cache that the small loops'
    /// subsets fit in.
    #[test]
    fn merged_loops_hurt_cpu_when_working_set_spills_cache() {
        let n = 1_000_000usize;
        let prog = Program::paradyn_kernel(n);
        let inputs: Vec<(usize, Vec<f64>)> = (0..3).map(|a| (a, vec![a as f64; n])).collect();
        let (_, base) = run_baseline(&prog, &inputs);
        let (_, fused) = run(&prog, &inputs, &slnsp_fuse(&prog), &HashSet::new());
        let cache = 32.0 * 1024.0 * 1024.0; // L3
        let (cache_bw, dram_bw) = (400e9, 60e9);
        // Small loops: each touches ~3 arrays => fits L3; merged: all 11.
        let ws_small = 3.0 * 8.0 * n as f64;
        let ws_merged = 11.0 * 8.0 * n as f64;
        assert!(
            ws_small <= cache && ws_merged > cache,
            "sizes chosen to straddle L3"
        );
        let t_small_loops = cpu_time(&base, ws_small, cache, cache_bw, dram_bw);
        let t_merged = cpu_time(&fused, ws_merged, cache, cache_bw, dram_bw);
        assert!(
            t_merged > t_small_loops,
            "merging should hurt the CPU: {t_merged} vs {t_small_loops}"
        );
    }

    /// ...while on the GPU (no such cache, launch-bound small kernels) the
    /// merged version wins — the tension the SLNSP compiler work resolves.
    #[test]
    fn merged_loops_help_gpu() {
        let n = 100_000usize;
        let prog = Program::paradyn_kernel(n);
        let inputs: Vec<(usize, Vec<f64>)> = (0..3).map(|a| (a, vec![a as f64; n])).collect();
        let (_, base) = run_baseline(&prog, &inputs);
        let (_, fused) = run(&prog, &inputs, &slnsp_fuse(&prog), &HashSet::new());
        let launches_base = prog.loops.len() as f64;
        let gpu = |s: &ExecStats, launches: f64| s.time(900e9) + launches * 5e-6;
        assert!(gpu(&fused, 1.0) < gpu(&base, launches_base));
    }
}
