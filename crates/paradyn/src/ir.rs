//! The loop IR: a program is a sequence of elementwise parallel loops.

/// An array identifier.
pub type ArrayId = usize;

/// A per-element expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Load element `i` of an array.
    Load(ArrayId),
    /// A literal.
    Const(f64),
    /// The loop index as a float.
    Index,
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    pub fn load(a: ArrayId) -> Expr {
        Expr::Load(a)
    }

    pub fn c(v: f64) -> Expr {
        Expr::Const(v)
    }

    pub fn add(self, o: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(o))
    }

    pub fn sub(self, o: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(o))
    }

    pub fn mul(self, o: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(o))
    }

    /// Arrays read by this expression (with multiplicity).
    pub fn reads(&self, out: &mut Vec<ArrayId>) {
        match self {
            Expr::Load(a) => out.push(*a),
            Expr::Const(_) | Expr::Index => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.reads(out);
                b.reads(out);
            }
        }
    }
}

/// One parallel loop: `for i in 0..n { arrays[writes][i] = expr(i) }`.
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    pub writes: ArrayId,
    pub expr: Expr,
}

/// A straight-line sequence of loops over a common trip count.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Trip count of every loop.
    pub n: usize,
    /// Number of arrays (ids 0..n_arrays).
    pub n_arrays: usize,
    pub loops: Vec<Loop>,
    /// Arrays whose final contents are observable outputs.
    pub live_out: Vec<ArrayId>,
}

impl Program {
    /// The ParaDyn-like kernel: a chain of small elementwise loops with
    /// temporaries feeding each other — a strain-rate/stress-ish update.
    /// Arrays 0-2 are inputs; several intermediates are physical fields
    /// the host code keeps (live-out), while t4, t6, and t8 are genuinely
    /// private temporaries — the targets the private-clause information
    /// exposes to dead-store elimination.
    pub fn paradyn_kernel(n: usize) -> Program {
        use Expr as E;
        let loops = vec![
            // t3 = a0 + a1
            Loop {
                writes: 3,
                expr: E::load(0).add(E::load(1)),
            },
            // t4 = a0 - a2
            Loop {
                writes: 4,
                expr: E::load(0).sub(E::load(2)),
            },
            // t5 = t3 * t4
            Loop {
                writes: 5,
                expr: E::load(3).mul(E::load(4)),
            },
            // t6 = t5 + a1 * 2
            Loop {
                writes: 6,
                expr: E::load(5).add(E::load(1).mul(E::c(2.0))),
            },
            // t7 = t6 * t6
            Loop {
                writes: 7,
                expr: E::load(6).mul(E::load(6)),
            },
            // t8 = t7 - t3
            Loop {
                writes: 8,
                expr: E::load(7).sub(E::load(3)),
            },
            // t9 = t8 * 0.5 + a2
            Loop {
                writes: 9,
                expr: E::load(8).mul(E::c(0.5)).add(E::load(2)),
            },
            // out = t9 + t5  (final stress update)
            Loop {
                writes: 10,
                expr: E::load(9).add(E::load(5)),
            },
        ];
        Program {
            n,
            n_arrays: 11,
            loops,
            live_out: vec![3, 5, 7, 9, 10],
        }
    }

    /// Arrays read anywhere in the program (deduplicated, sorted).
    pub fn all_reads(&self) -> Vec<ArrayId> {
        let mut out = Vec::new();
        for l in &self.loops {
            l.expr.reads(&mut out);
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_reads_collects_all_arrays() {
        let e = Expr::load(3).add(Expr::load(5).mul(Expr::load(3)));
        let mut r = Vec::new();
        e.reads(&mut r);
        assert_eq!(r, vec![3, 5, 3]);
    }

    #[test]
    fn paradyn_kernel_shape() {
        let p = Program::paradyn_kernel(100);
        assert_eq!(p.loops.len(), 8);
        assert_eq!(p.live_out, vec![3, 5, 7, 9, 10]);
        assert!(p.all_reads().contains(&0));
    }
}
