//! `portal` — a RAJA-like performance-portability layer over [`hetsim`]
//! devices, with an Umpire-like pool allocator.
//!
//! §3.3 of the paper describes the programming-approach landscape: CUDA for
//! peak performance, RAJA for portability at ~30 % cost (§4.9), OpenMP
//! competitive for some kernels (§4.1), and pool allocation to amortise
//! device allocations (§4.10.5). `portal` reproduces that landscape:
//!
//! * [`Policy`] selects *where* a loop runs (sequential host, `n` host
//!   threads, a device, a device with shared-memory tiling);
//! * [`Backend`] selects *how it was written* (native CUDA-style vs the
//!   portable abstraction, which pays the paper's measured penalty);
//! * [`Executor::forall`] runs the loop body **for real** on host threads so
//!   results are testable, while charging the modelled device;
//! * [`pool`] provides `Umpire`-style memory pools with allocation-cost
//!   accounting;
//! * [`view`] provides multi-dimensional index views used by the stencil
//!   codes.
//!
//! ```
//! use hetsim::{machines, Sim};
//! use portal::{Backend, Executor, PerItem, Policy};
//!
//! let mut exec = Executor::new(Sim::new(machines::sierra_node()));
//! let mut y = vec![0.0f64; 1 << 16];
//! let x: Vec<f64> = (0..1 << 16).map(|i| i as f64).collect();
//! let profile = PerItem::new().flops(2.0).bytes_read(16.0).bytes_written(8.0);
//! exec.forall_mut(Policy::device(0), Backend::Native, &profile, &mut y, |i, yi| {
//!     *yi = 2.0 * x[i] + 1.0;
//! });
//! assert_eq!(y[10], 21.0);
//! ```

pub mod exec;
pub mod pool;
pub mod scan;
pub mod view;

pub use exec::{Backend, Executor, PerItem, Policy, Staging, PIPELINE_BUFFERS};
pub use pool::{Pool, PoolStats, Space};
pub use scan::{exclusive_scan, reduce_max, reduce_min};
pub use view::{View2, View3, View4};
