//! Umpire-like memory pools.
//!
//! §4.10.5: "all data is allocated from memory pools that Umpire provides,
//! which amortizes the cost of these allocations." A raw `cudaMalloc` costs
//! tens of microseconds and synchronises the device; a pool hit costs
//! almost nothing. The pool tracks a free list per size class and reports
//! statistics so SAMRAI-style amortisation claims can be benchmarked.

use std::collections::BTreeMap;

use hetsim::obs::Recorder;
use parking_lot::Mutex;

/// Memory space an allocation lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    Host,
    Device,
    /// CUDA unified (managed) memory.
    Unified,
}

impl Space {
    /// Cost in seconds of a *fresh* OS/driver allocation in this space.
    pub fn raw_alloc_cost(&self) -> f64 {
        match self {
            // malloc + page faults on first touch.
            Space::Host => 2e-6,
            // cudaMalloc synchronises the device.
            Space::Device => 80e-6,
            // cudaMallocManaged is costlier still.
            Space::Unified => 120e-6,
        }
    }

    /// Cost of handing out a pooled block.
    pub fn pooled_alloc_cost(&self) -> f64 {
        0.2e-6
    }
}

/// Allocation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PoolStats {
    pub allocs: u64,
    pub pool_hits: u64,
    pub raw_allocs: u64,
    /// Bytes in blocks currently handed out to callers.
    pub bytes_live: u64,
    /// Bytes parked on the free lists, still owned by the pool. A freed
    /// device block is *not* returned to the driver — Umpire keeps it —
    /// so it still occupies device memory.
    pub bytes_cached: u64,
    /// Peak pool footprint: the maximum of `bytes_live + bytes_cached`
    /// ever observed. This is what capacity planning must budget for,
    /// not the live watermark alone.
    pub bytes_high_water: u64,
    /// Cached blocks released back to the driver to make room under a
    /// capacity bound (the Umpire "coalesce/release" path).
    pub trims: u64,
    /// Bytes released by those trims.
    pub bytes_trimmed: u64,
    /// Allocations that could not fit under the capacity bound even after
    /// trimming and fell back to host memory (graceful degradation, the
    /// §4.10.1 shape: run slower rather than abort).
    pub host_spills: u64,
    /// Bytes currently handed out as host-spilled blocks. These do *not*
    /// count against [`PoolStats::footprint`], which tracks the pool's own
    /// space.
    pub bytes_spilled: u64,
    /// Simulated seconds spent in allocation calls.
    pub alloc_seconds: f64,
}

impl PoolStats {
    /// Total bytes the pool currently owns (live + cached).
    pub fn footprint(&self) -> u64 {
        self.bytes_live + self.bytes_cached
    }
}

/// A size-class pool for one memory space.
#[derive(Debug)]
pub struct Pool {
    space: Space,
    /// Optional bound on [`PoolStats::footprint`] (live + cached bytes).
    /// `None` preserves the historical unbounded behaviour.
    capacity: Option<u64>,
    inner: Mutex<PoolInner>,
    recorder: Recorder,
}

#[derive(Debug, Default)]
struct PoolInner {
    /// Free blocks by rounded size class.
    free: BTreeMap<u64, u64>,
    /// Outstanding (handed-out) blocks by size class. [`Block`] is `Copy`,
    /// so nothing stops a caller freeing the same handle twice; this count
    /// is how the pool catches it instead of silently inflating the free
    /// list.
    outstanding: BTreeMap<u64, u64>,
    /// Outstanding host-spilled blocks by size class, tracked separately so
    /// the double-free check still works for them.
    outstanding_spilled: BTreeMap<u64, u64>,
    stats: PoolStats,
}

/// Round a request up to its size class (next power of two, min 256 B).
fn size_class(bytes: u64) -> u64 {
    bytes.max(256).next_power_of_two()
}

/// A pooled allocation handle. Return it with [`Pool::free`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    pub class: u64,
    pub space: Space,
    /// True when the capacity bound forced this block to host memory
    /// instead of the pool's own space. Kernels touching it pay link
    /// bandwidth instead of HBM bandwidth — slower, but the run survives.
    pub spilled: bool,
}

impl Pool {
    pub fn new(space: Space) -> Pool {
        Pool {
            space,
            capacity: None,
            inner: Mutex::new(PoolInner::default()),
            recorder: Recorder::noop(),
        }
    }

    /// Bound the pool's footprint (live + cached) to `bytes` (builder
    /// form). When an allocation would exceed the bound the pool first
    /// trims cached blocks back to the driver; if the *live* bytes alone
    /// still do not fit, the block spills to host memory and is marked
    /// [`Block::spilled`] — graceful degradation instead of an abort.
    pub fn with_capacity(mut self, bytes: u64) -> Pool {
        self.capacity = Some(bytes);
        self
    }

    /// The configured footprint bound, if any.
    pub fn capacity(&self) -> Option<u64> {
        self.capacity
    }

    /// Attach an observability recorder (builder form): allocation traffic
    /// and the hit-rate gauge are published under `pool.*`.
    pub fn with_recorder(mut self, recorder: Recorder) -> Pool {
        self.recorder = recorder;
        self
    }

    /// Attach an observability recorder in place.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    pub fn space(&self) -> Space {
        self.space
    }

    /// Allocate `bytes`; returns the handle and the simulated cost paid.
    ///
    /// Under a capacity bound ([`Pool::with_capacity`]) a fresh allocation
    /// that would push the footprint over the limit first trims cached
    /// blocks (releasing them to the driver, as Umpire's `release()` does);
    /// if live bytes alone still exceed the bound, the block is handed out
    /// from *host* memory instead and marked [`Block::spilled`].
    pub fn alloc(&self, bytes: u64) -> (Block, f64) {
        let class = size_class(bytes);
        let mut g = self.inner.lock();
        g.stats.allocs += 1;

        // Pool hit: cached -> live, footprint unchanged, never violates the
        // capacity bound.
        let hit = matches!(g.free.get(&class), Some(n) if *n > 0);
        if hit {
            *g.free.get_mut(&class).unwrap() -= 1;
            g.stats.pool_hits += 1;
            g.stats.bytes_cached -= class;
            let cost = self.space.pooled_alloc_cost();
            *g.outstanding.entry(class).or_insert(0) += 1;
            g.stats.alloc_seconds += cost;
            g.stats.bytes_live += class;
            g.stats.bytes_high_water = g.stats.bytes_high_water.max(g.stats.footprint());
            self.publish(&g, cost, true, false);
            return (
                Block {
                    class,
                    space: self.space,
                    spilled: false,
                },
                cost,
            );
        }

        // Fresh block: grows the footprint; enforce the bound.
        if let Some(cap) = self.capacity {
            // Step 1 — trim cached blocks back to the driver until the new
            // block fits (largest classes first: fewest releases).
            while g.stats.footprint() + class > cap && g.stats.bytes_cached > 0 {
                let victim = *g
                    .free
                    .iter()
                    .rev()
                    .find(|(_, n)| **n > 0)
                    .map(|(c, _)| c)
                    .expect("bytes_cached > 0 implies a non-empty free list");
                *g.free.get_mut(&victim).unwrap() -= 1;
                g.stats.bytes_cached -= victim;
                g.stats.trims += 1;
                g.stats.bytes_trimmed += victim;
            }
            // Step 2 — still does not fit: spill the block to host.
            if g.stats.bytes_live + class > cap {
                let cost = Space::Host.raw_alloc_cost();
                g.stats.host_spills += 1;
                g.stats.bytes_spilled += class;
                *g.outstanding_spilled.entry(class).or_insert(0) += 1;
                g.stats.alloc_seconds += cost;
                self.publish(&g, cost, false, true);
                return (
                    Block {
                        class,
                        space: self.space,
                        spilled: true,
                    },
                    cost,
                );
            }
        }

        g.stats.raw_allocs += 1;
        let cost = self.space.raw_alloc_cost();
        *g.outstanding.entry(class).or_insert(0) += 1;
        g.stats.alloc_seconds += cost;
        g.stats.bytes_live += class;
        g.stats.bytes_high_water = g.stats.bytes_high_water.max(g.stats.footprint());
        self.publish(&g, cost, false, false);
        (
            Block {
                class,
                space: self.space,
                spilled: false,
            },
            cost,
        )
    }

    /// Publish the per-allocation metrics (no-op when the recorder is the
    /// default noop handle).
    fn publish(&self, g: &PoolInner, cost: f64, hit: bool, spilled: bool) {
        if !self.recorder.is_enabled() {
            return;
        }
        self.recorder.incr("pool.allocs", 1.0);
        if hit {
            self.recorder.incr("pool.hits", 1.0);
        } else if spilled {
            self.recorder.incr("pool.host_spills", 1.0);
        } else {
            self.recorder.incr("pool.raw_allocs", 1.0);
        }
        self.recorder.incr("pool.alloc_seconds", cost);
        self.recorder.gauge(
            "pool.hit_rate",
            g.stats.pool_hits as f64 / g.stats.allocs as f64,
        );
        self.recorder
            .gauge("pool.bytes_live", g.stats.bytes_live as f64);
        self.recorder
            .gauge("pool.bytes_cached", g.stats.bytes_cached as f64);
        self.recorder
            .gauge("pool.bytes_spilled", g.stats.bytes_spilled as f64);
    }

    /// Return a block to the pool (it stays cached for reuse, and keeps
    /// counting against [`PoolStats::footprint`] via `bytes_cached`).
    ///
    /// # Panics
    ///
    /// [`Block`] is `Copy`, so the type system cannot stop a handle being
    /// freed twice. Before this check, a double free silently inflated
    /// the free list (one real block, two cached entries) and made
    /// `bytes_live` drift low. The pool now tracks outstanding blocks per
    /// size class and panics on a free with none outstanding.
    pub fn free(&self, block: Block) {
        assert_eq!(block.space, self.space, "block returned to wrong pool");
        let mut g = self.inner.lock();
        if block.spilled {
            // Host-spilled blocks go straight back to the OS; they never
            // enter the device free list.
            match g.outstanding_spilled.get_mut(&block.class) {
                Some(n) if *n > 0 => *n -= 1,
                _ => panic!(
                    "double free: no outstanding spilled {}-byte block in the {:?} pool",
                    block.class, self.space
                ),
            }
            g.stats.bytes_spilled -= block.class;
            if self.recorder.is_enabled() {
                self.recorder
                    .gauge("pool.bytes_spilled", g.stats.bytes_spilled as f64);
            }
            return;
        }
        match g.outstanding.get_mut(&block.class) {
            Some(n) if *n > 0 => *n -= 1,
            _ => panic!(
                "double free: no outstanding {}-byte block in the {:?} pool",
                block.class, self.space
            ),
        }
        *g.free.entry(block.class).or_insert(0) += 1;
        g.stats.bytes_live -= block.class;
        g.stats.bytes_cached += block.class;
        if self.recorder.is_enabled() {
            self.recorder
                .gauge("pool.bytes_live", g.stats.bytes_live as f64);
            self.recorder
                .gauge("pool.bytes_cached", g.stats.bytes_cached as f64);
        }
    }

    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Fraction of allocations served from the pool.
    pub fn hit_rate(&self) -> f64 {
        let s = self.stats();
        if s.allocs == 0 {
            0.0
        } else {
            s.pool_hits as f64 / s.allocs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_round_up() {
        assert_eq!(size_class(1), 256);
        assert_eq!(size_class(256), 256);
        assert_eq!(size_class(257), 512);
        assert_eq!(size_class(1 << 20), 1 << 20);
    }

    #[test]
    fn first_alloc_is_raw_second_is_pooled() {
        let p = Pool::new(Space::Device);
        let (b, c1) = p.alloc(1000);
        p.free(b);
        let (_, c2) = p.alloc(900); // same class
        assert!(c1 > 10.0 * c2, "raw {c1} pooled {c2}");
        assert_eq!(p.stats().pool_hits, 1);
    }

    #[test]
    fn steady_state_hit_rate_approaches_one() {
        // The SAMRAI pattern: per-timestep temporaries of repeating sizes.
        let p = Pool::new(Space::Device);
        for _ in 0..100 {
            let (a, _) = p.alloc(4096);
            let (b, _) = p.alloc(16384);
            p.free(a);
            p.free(b);
        }
        assert!(p.hit_rate() > 0.98);
    }

    #[test]
    fn high_water_tracks_peak() {
        let p = Pool::new(Space::Host);
        let (a, _) = p.alloc(1 << 20);
        let (b, _) = p.alloc(1 << 20);
        p.free(a);
        p.free(b);
        let s = p.stats();
        assert_eq!(s.bytes_high_water, 2 << 20);
        assert_eq!(s.bytes_live, 0);
        // Freed blocks stay pool-owned: the footprint has not shrunk.
        assert_eq!(s.bytes_cached, 2 << 20);
        assert_eq!(s.footprint(), 2 << 20);
    }

    #[test]
    fn high_water_includes_pool_held_bytes() {
        // Regression: a cached block still occupies device memory. Alloc
        // 1 MiB, free it (pool keeps it), then alloc 2 MiB of a different
        // class: the real footprint peaks at 3 MiB, not the 2 MiB the old
        // live-only watermark reported.
        let p = Pool::new(Space::Device);
        let (a, _) = p.alloc(1 << 20);
        p.free(a);
        let _ = p.alloc(2 << 20);
        let s = p.stats();
        assert_eq!(s.bytes_live, 2 << 20);
        assert_eq!(s.bytes_cached, 1 << 20);
        assert_eq!(
            s.bytes_high_water,
            3 << 20,
            "watermark must budget cached blocks"
        );
    }

    #[test]
    fn cached_bytes_move_between_free_list_and_live() {
        let p = Pool::new(Space::Device);
        let (a, _) = p.alloc(4096);
        assert_eq!(p.stats().bytes_cached, 0);
        p.free(a);
        assert_eq!(p.stats().bytes_cached, 4096);
        assert_eq!(p.stats().bytes_live, 0);
        let (_b, _) = p.alloc(4096); // pool hit: cached -> live
        let s = p.stats();
        assert_eq!(s.bytes_cached, 0);
        assert_eq!(s.bytes_live, 4096);
        assert_eq!(
            s.bytes_high_water, 4096,
            "recycling must not grow the watermark"
        );
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_of_a_copied_handle_panics() {
        // Regression: `Block` is `Copy`; freeing the same handle twice used
        // to silently add a phantom block to the free list.
        let p = Pool::new(Space::Device);
        let (b, _) = p.alloc(1024);
        p.free(b);
        p.free(b);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn freeing_a_never_allocated_class_panics() {
        let p = Pool::new(Space::Host);
        let (_b, _) = p.alloc(300); // class 512
        p.free(Block {
            class: 1 << 16,
            space: Space::Host,
            spilled: false,
        });
    }

    #[test]
    fn recorder_sees_cached_bytes_gauge() {
        let rec = Recorder::enabled();
        let p = Pool::new(Space::Device).with_recorder(rec.clone());
        let (a, _) = p.alloc(8192);
        p.free(a);
        assert_eq!(rec.gauge_value("pool.bytes_cached"), Some(8192.0));
        assert_eq!(rec.gauge_value("pool.bytes_live"), Some(0.0));
    }

    #[test]
    fn recorder_publishes_traffic_and_hit_rate() {
        let rec = Recorder::enabled();
        let p = Pool::new(Space::Device).with_recorder(rec.clone());
        let (a, _) = p.alloc(4096);
        p.free(a);
        p.alloc(4096);
        assert_eq!(rec.counter("pool.allocs"), 2.0);
        assert_eq!(rec.counter("pool.hits"), 1.0);
        assert_eq!(rec.counter("pool.raw_allocs"), 1.0);
        assert_eq!(rec.gauge_value("pool.hit_rate"), Some(0.5));
        assert!(rec.counter("pool.alloc_seconds") > 0.0);
    }

    #[test]
    #[should_panic(expected = "wrong pool")]
    fn cross_pool_free_panics() {
        let host = Pool::new(Space::Host);
        let dev = Pool::new(Space::Device);
        let (b, _) = host.alloc(128);
        dev.free(b);
    }

    #[test]
    fn capacity_bound_trims_cached_blocks_first() {
        // 2 MiB bound: a cached 1 MiB block is released to the driver to
        // make room for a fresh 2 MiB request — no spill needed.
        let p = Pool::new(Space::Device).with_capacity(2 << 20);
        let (a, _) = p.alloc(1 << 20);
        p.free(a);
        assert_eq!(p.stats().bytes_cached, 1 << 20);
        let (b, _) = p.alloc(2 << 20);
        assert!(!b.spilled, "trimming should have made room");
        let s = p.stats();
        assert_eq!(s.trims, 1);
        assert_eq!(s.bytes_trimmed, 1 << 20);
        assert_eq!(s.bytes_cached, 0);
        assert_eq!(s.host_spills, 0);
        assert!(s.footprint() <= 2 << 20);
    }

    #[test]
    fn capacity_overflow_spills_to_host() {
        // 1 MiB bound with 1 MiB live: the second block cannot fit even
        // after trimming, so it degrades to host memory instead of
        // aborting (the §4.10.1 shape).
        let p = Pool::new(Space::Device).with_capacity(1 << 20);
        let (a, _) = p.alloc(1 << 20);
        let (b, _) = p.alloc(1 << 20);
        assert!(!a.spilled);
        assert!(b.spilled, "over-capacity block must degrade to host");
        let s = p.stats();
        assert_eq!(s.host_spills, 1);
        assert_eq!(s.bytes_spilled, 1 << 20);
        assert!(s.footprint() <= 1 << 20, "bound must hold");
        p.free(b);
        assert_eq!(p.stats().bytes_spilled, 0);
        p.free(a);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn spilled_block_double_free_panics() {
        let p = Pool::new(Space::Device).with_capacity(256);
        let (a, _) = p.alloc(256);
        let (b, _) = p.alloc(256);
        assert!(b.spilled);
        p.free(b);
        let _keep = a;
        p.free(b);
    }

    #[test]
    fn footprint_never_exceeds_capacity_under_churn() {
        let cap = 4 << 20;
        let p = Pool::new(Space::Device).with_capacity(cap);
        let mut live = Vec::new();
        for i in 0..64u64 {
            let (b, _) = p.alloc(((i % 5) + 1) << 19);
            live.push(b);
            assert!(p.stats().footprint() <= cap, "bound violated at step {i}");
            if i % 3 == 0 {
                if let Some(b) = live.pop() {
                    p.free(b);
                }
            }
        }
        assert!(p.stats().bytes_high_water <= cap);
        for b in live {
            p.free(b);
        }
    }

    #[test]
    fn recorder_sees_spill_traffic() {
        let rec = Recorder::enabled();
        let p = Pool::new(Space::Device)
            .with_capacity(1 << 20)
            .with_recorder(rec.clone());
        let (_a, _) = p.alloc(1 << 20);
        let (b, _) = p.alloc(1 << 20);
        assert!(b.spilled);
        assert_eq!(rec.counter("pool.host_spills"), 1.0);
        assert_eq!(
            rec.gauge_value("pool.bytes_spilled"),
            Some((1 << 20) as f64)
        );
    }

    #[test]
    fn pooling_amortises_device_allocation_cost() {
        // Quantifies the §4.10.5 claim: pooled timestep allocation cost is a
        // tiny fraction of repeated cudaMalloc.
        let pooled = Pool::new(Space::Device);
        let mut pooled_cost = 0.0;
        for _ in 0..1000 {
            let (b, c) = pooled.alloc(1 << 16);
            pooled_cost += c;
            pooled.free(b);
        }
        let raw_cost = 1000.0 * Space::Device.raw_alloc_cost();
        assert!(raw_cost / pooled_cost > 50.0);
    }
}
