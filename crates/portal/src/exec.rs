//! Execution policies and the `forall` engine.

use hetsim::obs::Recorder;
use hetsim::{CostTerms, KernelProfile, LaunchClass, Loc, Sim, StreamId, Target, TransferKind};

/// Where a loop executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Sequential host loop.
    Seq,
    /// `n` host threads (OpenMP-style fork-join).
    Threads(usize),
    /// Plain device kernel on GPU `gpu`.
    Device { gpu: usize },
    /// Device kernel that stages tiles through shared memory (§4.9).
    DeviceShared { gpu: usize },
    /// Device kernel reading through the texture path (§4.7).
    DeviceTexture { gpu: usize },
}

impl Policy {
    pub fn device(gpu: usize) -> Policy {
        Policy::Device { gpu }
    }

    pub fn is_device(&self) -> bool {
        matches!(
            self,
            Policy::Device { .. } | Policy::DeviceShared { .. } | Policy::DeviceTexture { .. }
        )
    }

    fn target(&self, _sim: &Sim) -> Target {
        match *self {
            Policy::Seq => Target::cpu(1),
            Policy::Threads(n) => Target::cpu(n),
            Policy::Device { gpu }
            | Policy::DeviceShared { gpu }
            | Policy::DeviceTexture { gpu } => Target::gpu(gpu),
        }
    }

    fn host_threads(&self, sim: &Sim) -> usize {
        match *self {
            Policy::Seq => 1,
            Policy::Threads(n) => n.max(1),
            // Device loops still execute on the host for verifiability; use
            // every core so real wall time stays low.
            _ => sim.machine().node.cpu.cores(),
        }
    }
}

/// How the kernel was authored. The portable abstraction pays the paper's
/// measured penalty: sw4lite saw RAJA within ~30 % of CUDA on device
/// (§4.9); host-side lambda overhead is small.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Hand-written CUDA / plain loops.
    #[default]
    Native,
    /// RAJA-style portable abstraction.
    Portal,
}

impl Backend {
    /// Time multiplier relative to a native kernel, at the paper's own
    /// Sierra calibration (1.3 on device, 1.05 on host). Prefer
    /// [`Backend::penalty_on`] where a machine is in hand — on Sierra the
    /// two agree exactly.
    pub fn penalty(&self, policy: Policy) -> f64 {
        match (self, policy.is_device()) {
            (Backend::Native, _) => 1.0,
            (Backend::Portal, true) => 1.3,
            (Backend::Portal, false) => 1.05,
        }
    }

    /// Time multiplier relative to a native kernel on a specific machine:
    /// the per-architecture generalization of the paper's single RAJA
    /// figure, from [`hetsim::Machine::backend`]'s calibration table.
    pub fn penalty_on(&self, machine: &hetsim::Machine, policy: Policy) -> f64 {
        match self {
            Backend::Native => 1.0,
            Backend::Portal => {
                let b = machine.backend();
                if policy.is_device() {
                    b.device_factor
                } else {
                    b.host_factor
                }
            }
        }
    }
}

/// Per-iteration cost description; multiplied by the trip count to build a
/// [`KernelProfile`].
///
/// This is a thin wrapper over [`hetsim::CostTerms`] — the *same* builder
/// core `KernelProfile` is made from — so the two cost APIs cannot drift.
/// `PerItem` derefs to its terms, so field reads (`item.flops`) keep
/// working.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PerItem {
    pub terms: CostTerms,
}

impl std::ops::Deref for PerItem {
    type Target = CostTerms;

    fn deref(&self) -> &CostTerms {
        &self.terms
    }
}

impl From<CostTerms> for PerItem {
    fn from(terms: CostTerms) -> PerItem {
        PerItem { terms }
    }
}

impl PerItem {
    pub fn new() -> PerItem {
        PerItem {
            terms: CostTerms::new(),
        }
    }

    pub fn flops(self, f: f64) -> Self {
        PerItem {
            terms: self.terms.flops(f),
        }
    }

    pub fn bytes_read(self, b: f64) -> Self {
        PerItem {
            terms: self.terms.bytes_read(b),
        }
    }

    pub fn bytes_written(self, b: f64) -> Self {
        PerItem {
            terms: self.terms.bytes_written(b),
        }
    }

    pub fn bandwidth_eff(self, e: f64) -> Self {
        PerItem {
            terms: self.terms.bandwidth_eff(e),
        }
    }

    pub fn compute_eff(self, e: f64) -> Self {
        PerItem {
            terms: self.terms.compute_eff(e),
        }
    }

    /// Expand to a kernel profile for `n` iterations under `policy` — a
    /// thin scaling wrapper over [`KernelProfile::from_terms`].
    pub fn profile(&self, name: &str, n: usize, policy: Policy) -> KernelProfile {
        let nf = n as f64;
        let mut k = KernelProfile::from_terms(name, self.terms.scaled(nf)).parallelism(nf);
        match policy {
            Policy::Seq => k = k.launch_class(LaunchClass::HostSerial),
            Policy::Threads(_) => k = k.launch_class(LaunchClass::HostParallel),
            Policy::Device { .. } => {}
            Policy::DeviceShared { .. } => k = k.shared_mem(true),
            Policy::DeviceTexture { .. } => k = k.texture(true),
        }
        k
    }
}

/// Runs loops for real while charging a [`Sim`].
#[derive(Debug)]
pub struct Executor {
    sim: Sim,
}

impl Executor {
    pub fn new(sim: Sim) -> Executor {
        Executor { sim }
    }

    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    pub fn sim_mut(&mut self) -> &mut Sim {
        &mut self.sim
    }

    /// Attach an observability recorder to the underlying [`Sim`].
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.sim.set_recorder(recorder);
    }

    /// The underlying sim's recorder handle.
    pub fn recorder(&self) -> &Recorder {
        self.sim.recorder()
    }

    /// Cumulative activity counters of the underlying [`Sim`]
    /// (the same `counters()` shape `Sim` and `Network` expose).
    pub fn counters(&self) -> &hetsim::sim::Counters {
        self.sim.counters()
    }

    /// Reset the underlying sim's clocks and counters, keeping the machine
    /// and recorder.
    pub fn reset(&mut self) {
        self.sim.reset();
    }

    /// Simulated seconds elapsed so far.
    pub fn elapsed(&self) -> f64 {
        self.sim.elapsed()
    }

    /// A device [`Pool`](crate::Pool) bounded by GPU `gpu`'s memory
    /// capacity from the underlying machine spec, sharing this executor's
    /// recorder. With the bound in place, over-subscribed allocations trim
    /// the pool's cache and then degrade to host memory instead of
    /// pretending the device is infinite (the §4.10.1 shape).
    ///
    /// # Panics
    ///
    /// Panics if `gpu` is out of range for the machine.
    pub fn device_pool(&self, gpu: usize) -> crate::Pool {
        let spec = &self.sim.machine().node.gpus[gpu];
        let cap = (spec.mem_capacity_gib * hetsim::GIB) as u64;
        crate::Pool::new(crate::Space::Device)
            .with_capacity(cap)
            .with_recorder(self.sim.recorder().clone())
    }

    fn charge(
        &mut self,
        name: &str,
        n: usize,
        policy: Policy,
        backend: Backend,
        item: &PerItem,
    ) -> f64 {
        let profile = item.profile(name, n, policy);
        let target = policy.target(&self.sim);
        let base = self.sim.launch(target, &profile);
        let dt = base * backend.penalty_on(self.sim.machine(), policy);
        // `launch` advanced the stream by the unpenalised time; charge the
        // abstraction overhead on top.
        self.sim.advance(target, dt - base);
        let rec = self.sim.recorder();
        if rec.is_enabled() {
            rec.incr("portal.launches", 1.0);
            rec.incr("portal.items", n as f64);
            rec.incr("portal.overhead_s", dt - base);
        }
        dt
    }

    /// Read-only `forall`: run `f(i)` for `i in 0..n`. Returns simulated
    /// seconds.
    pub fn forall<F>(
        &mut self,
        policy: Policy,
        backend: Backend,
        item: &PerItem,
        n: usize,
        f: F,
    ) -> f64
    where
        F: Fn(usize) + Sync,
    {
        let threads = policy.host_threads(&self.sim);
        run_parallel(n, threads, &f);
        self.charge("forall", n, policy, backend, item)
    }

    /// `forall` over a mutable slice: `f(i, &mut out[i])`. The common "one
    /// output element per iteration" pattern, race-free by construction.
    pub fn forall_mut<T, F>(
        &mut self,
        policy: Policy,
        backend: Backend,
        item: &PerItem,
        out: &mut [T],
        f: F,
    ) -> f64
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let threads = policy.host_threads(&self.sim);
        let n = out.len();
        run_parallel_chunks(out, threads, |base, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                f(base + off, slot);
            }
        });
        self.charge("forall_mut", n, policy, backend, item)
    }

    /// Sum-reduction `forall`: returns `(sum of f(i), simulated seconds)`.
    pub fn forall_reduce_sum<F>(
        &mut self,
        policy: Policy,
        backend: Backend,
        item: &PerItem,
        n: usize,
        f: F,
    ) -> (f64, f64)
    where
        F: Fn(usize) -> f64 + Sync,
    {
        let threads = policy.host_threads(&self.sim);
        let sum = reduce_parallel(n, threads, &f);
        let dt = self.charge("reduce_sum", n, policy, backend, item);
        (sum, dt)
    }
}

/// Run `f(i)` for all i in 0..n across `threads` host threads.
pub fn run_parallel<F>(n: usize, threads: usize, f: &F)
where
    F: Fn(usize) + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n < 1024 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            s.spawn(move || {
                for i in lo..hi {
                    f(i);
                }
            });
        }
    });
}

/// Split `out` into per-thread chunks and run `f(base_index, chunk)`.
pub fn run_parallel_chunks<T, F>(out: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = out.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n < 1024 {
        f(0, out);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        let mut rest = out;
        let mut base = 0;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let b = base;
            let fr = &f;
            s.spawn(move || fr(b, head));
            rest = tail;
            base += take;
        }
    });
}

/// Deterministic parallel sum of `f(i)` for i in 0..n.
///
/// Partial sums are accumulated per fixed-size chunk and then added in chunk
/// order, so the result does not depend on thread scheduling.
pub fn reduce_parallel<F>(n: usize, threads: usize, f: &F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n < 1024 {
        return (0..n).map(f).sum();
    }
    let chunk = n.div_ceil(threads);
    let mut partials = vec![0.0f64; threads];
    std::thread::scope(|s| {
        for (t, slot) in partials.iter_mut().enumerate() {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            s.spawn(move || {
                let mut acc = 0.0;
                for i in lo..hi {
                    acc += f(i);
                }
                *slot = acc;
            });
        }
    });
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::machines;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn exec() -> Executor {
        Executor::new(Sim::new(machines::sierra_node()))
    }

    #[test]
    fn forall_visits_every_index() {
        let mut e = exec();
        let count = AtomicU64::new(0);
        e.forall(
            Policy::Threads(8),
            Backend::Native,
            &PerItem::new(),
            10_000,
            |_| {
                count.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(count.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn forall_mut_writes_every_slot() {
        let mut e = exec();
        let mut v = vec![0usize; 5000];
        e.forall_mut(
            Policy::device(0),
            Backend::Portal,
            &PerItem::new(),
            &mut v,
            |i, s| {
                *s = i * 2;
            },
        );
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn reduction_matches_serial() {
        let mut e = exec();
        let item = PerItem::new().flops(1.0).bytes_read(8.0);
        let (par, _) =
            e.forall_reduce_sum(Policy::Threads(16), Backend::Native, &item, 100_000, |i| {
                i as f64
            });
        let serial: f64 = (0..100_000).map(|i| i as f64).sum();
        assert_eq!(par, serial);
    }

    #[test]
    fn metrics_aggregate_across_forall_worker_threads() {
        // The multi-threaded story: worker threads share the recorder's
        // state through cheap clones, and the engine's own metrics land in
        // the same registry.
        let mut e = exec();
        let rec = Recorder::enabled();
        e.set_recorder(rec.clone());
        let n = 10_000;
        let rc = rec.clone();
        e.forall(
            Policy::Threads(8),
            Backend::Native,
            &PerItem::new().flops(1.0),
            n,
            move |_| rc.incr("app.items_seen", 1.0),
        );
        assert_eq!(rec.counter("app.items_seen"), n as f64);
        assert_eq!(rec.counter("portal.launches"), 1.0);
        assert_eq!(rec.counter("portal.items"), n as f64);
        assert_eq!(
            rec.counter("launches"),
            1.0,
            "sim-level launch counted once"
        );
        assert_eq!(rec.spans().len(), 1, "one kernel span for the whole forall");
    }

    #[test]
    fn executor_reset_and_counters_mirror_sim() {
        let mut e = exec();
        e.forall(
            Policy::device(0),
            Backend::Native,
            &PerItem::new().flops(4.0),
            5000,
            |_| {},
        );
        assert_eq!(e.counters().kernels_launched, 1);
        assert!(e.elapsed() > 0.0);
        e.reset();
        assert_eq!(e.counters().kernels_launched, 0);
        assert_eq!(e.elapsed(), 0.0);
    }

    #[test]
    fn per_item_is_a_thin_wrapper_over_cost_terms() {
        let item = PerItem::from(CostTerms::new().flops(3.0).bytes_read(8.0));
        // Deref keeps field reads working.
        assert_eq!(item.flops, 3.0);
        let k = item.profile("k", 100, Policy::device(0));
        assert_eq!(k.flops, 300.0);
        assert_eq!(k.bytes_read, 800.0);
        assert_eq!(k.parallelism, 100.0);
        assert_eq!(k.terms(), item.terms.scaled(100.0));
    }

    #[test]
    fn portal_backend_costs_more_on_device() {
        let item = PerItem::new()
            .flops(10.0)
            .bytes_read(24.0)
            .bytes_written(8.0);
        let n = 1 << 20;
        let mut e1 = exec();
        let t_native = e1.forall(Policy::device(0), Backend::Native, &item, n, |_| {});
        let mut e2 = exec();
        let t_portal = e2.forall(Policy::device(0), Backend::Portal, &item, n, |_| {});
        let ratio = t_portal / t_native;
        assert!((ratio - 1.3).abs() < 0.01, "{ratio}");
    }

    #[test]
    fn shared_memory_policy_is_faster_for_stencils() {
        // §4.9: sw4lite stencil kernels improved ~2x with shared memory.
        let item = PerItem::new()
            .flops(50.0)
            .bytes_read(72.0)
            .bytes_written(8.0);
        let n = 1 << 22;
        let mut e1 = exec();
        let plain = e1.forall(Policy::device(0), Backend::Native, &item, n, |_| {});
        let mut e2 = exec();
        let tiled = e2.forall(
            Policy::DeviceShared { gpu: 0 },
            Backend::Native,
            &item,
            n,
            |_| {},
        );
        assert!(plain / tiled > 1.5, "{}", plain / tiled);
    }

    #[test]
    fn device_beats_serial_host_on_streaming_loop() {
        let item = PerItem::new()
            .flops(2.0)
            .bytes_read(16.0)
            .bytes_written(8.0);
        let n = 1 << 22;
        let mut e1 = exec();
        let dev = e1.forall(Policy::device(0), Backend::Native, &item, n, |_| {});
        let mut e2 = exec();
        let seq = e2.forall(Policy::Seq, Backend::Native, &item, n, |_| {});
        assert!(seq / dev > 5.0);
    }

    #[test]
    fn tiny_loops_lose_on_device_launch_overhead() {
        // The ParaDyn problem (§4.8): many small loops => launch-bound.
        let item = PerItem::new().flops(2.0).bytes_read(16.0);
        let n = 64;
        let mut e1 = exec();
        let mut dev = 0.0;
        for _ in 0..100 {
            dev += e1.forall(Policy::device(0), Backend::Native, &item, n, |_| {});
        }
        let mut e2 = exec();
        let mut host = 0.0;
        for _ in 0..100 {
            host += e2.forall(Policy::Threads(4), Backend::Native, &item, n, |_| {});
        }
        assert!(dev > 2.0 * host, "dev {dev} host {host}");
    }

    #[test]
    fn merged_loop_beats_many_small_launches() {
        // The ParaDyn fix: merging loops amortises launch overhead.
        let item = PerItem::new().flops(2.0).bytes_read(16.0);
        let mut e1 = exec();
        let mut many = 0.0;
        for _ in 0..50 {
            many += e1.forall(Policy::device(0), Backend::Native, &item, 1000, |_| {});
        }
        let mut e2 = exec();
        let merged = e2.forall(Policy::device(0), Backend::Native, &item, 50_000, |_| {});
        assert!(many > 5.0 * merged, "many {many} merged {merged}");
    }
}

/// Host<->device traffic of a staged loop, in bytes per item: what must
/// cross the link before ([`Staging::h2d_per_item`]) and after
/// ([`Staging::d2h_per_item`]) the kernel. Distinct from the kernel's own
/// [`PerItem`] device-memory traffic — a stencil may read each staged byte
/// many times from HBM.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Staging {
    /// Input bytes copied host -> device per item.
    pub h2d_per_item: f64,
    /// Output bytes copied device -> host per item.
    pub d2h_per_item: f64,
}

impl Staging {
    pub fn new(h2d_per_item: f64, d2h_per_item: f64) -> Staging {
        Staging {
            h2d_per_item,
            d2h_per_item,
        }
    }
}

/// How many chunks may be resident on the device at once in
/// [`Executor::forall_pipelined`]: classic double buffering. Chunk `c`'s
/// upload waits until chunk `c - PIPELINE_BUFFERS`'s kernel has freed its
/// staging buffer.
pub const PIPELINE_BUFFERS: usize = 2;

impl Executor {
    /// Serial staged loop: upload all input, run the kernel, download all
    /// output — each step blocking, the `cudaMemcpy` baseline every §4
    /// pipelining lesson starts from. Runs `f(i, &mut out[i])` for real on
    /// the host like [`Executor::forall_mut`]. Returns simulated seconds.
    pub fn forall_staged<T, F>(
        &mut self,
        gpu: usize,
        backend: Backend,
        item: &PerItem,
        stage: Staging,
        out: &mut [T],
        f: F,
    ) -> f64
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let threads = Policy::Device { gpu }.host_threads(&self.sim);
        run_parallel_chunks(out, threads, |base, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                f(base + off, slot);
            }
        });
        self.staged_cost(gpu, backend, item, stage, out.len())
    }

    /// Simulated cost of [`Executor::forall_staged`] for `n` items without
    /// running any host work: the blocking upload / kernel / download
    /// sequence, charged identically. This is the auto-tuner's serial
    /// baseline objective (`icoe::tune`).
    pub fn staged_cost(
        &mut self,
        gpu: usize,
        backend: Backend,
        item: &PerItem,
        stage: Staging,
        n: usize,
    ) -> f64 {
        let nf = n as f64;
        let mut dt = 0.0;
        if stage.h2d_per_item > 0.0 {
            dt += self.sim.transfer(
                Loc::Host,
                Loc::Gpu(gpu),
                nf * stage.h2d_per_item,
                TransferKind::Memcpy,
            );
        }
        dt += self.charge("forall_mut", n, Policy::Device { gpu }, backend, item);
        if stage.d2h_per_item > 0.0 {
            dt += self.sim.transfer(
                Loc::Gpu(gpu),
                Loc::Host,
                nf * stage.d2h_per_item,
                TransferKind::Memcpy,
            );
        }
        dt
    }

    /// Chunked H2D / compute / D2H double buffering — the §4 CUDA-streams
    /// optimisation (overlapped halo exchange, copy-engine concurrency
    /// behind the SAMRAI/MFEM/Ardra speedups) as a loop policy.
    ///
    /// The index space is split into `chunks` chunks. Chunk `c + 1`'s
    /// input crosses the `gpu<N>.h2d` copy engine while chunk `c` computes
    /// on the default stream and chunk `c - 1` drains back over
    /// `gpu<N>.d2h`; [`PIPELINE_BUFFERS`] bounds how far uploads may run
    /// ahead (double buffering). With enough chunks and copy time ≈
    /// compute time the three tracks run concurrently and total time drops
    /// from `h2d + k + d2h` toward `max(h2d, k, d2h)`; with too many
    /// chunks, per-chunk copy latency and kernel-launch overhead win and
    /// the pipeline loses again — the classic crossover the
    /// `pipeline-overlap` experiment sweeps.
    ///
    /// Runs `f(i, &mut out[i])` for real on the host (chunk by chunk, all
    /// cores), like [`Executor::forall_mut`]. Returns the simulated
    /// seconds from first upload to last download.
    pub fn forall_pipelined<T, F>(
        &mut self,
        gpu: usize,
        backend: Backend,
        item: &PerItem,
        stage: Staging,
        out: &mut [T],
        chunks: usize,
        f: F,
    ) -> f64
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let n = out.len();
        if n == 0 {
            return 0.0;
        }
        let chunks = chunks.clamp(1, n);
        let chunk_len = n.div_ceil(chunks);
        let threads = self.sim.machine().node.cpu.cores();

        // Run the real computation on the host, chunk by chunk (the same
        // chunk boundaries the simulated schedule charges below).
        let mut rest = out;
        let mut base = 0usize;
        while !rest.is_empty() {
            let take = chunk_len.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            run_parallel_chunks(head, threads, |off, slab| {
                for (k, slot) in slab.iter_mut().enumerate() {
                    f(base + off + k, slot);
                }
            });
            rest = tail;
            base += take;
        }
        self.pipeline_cost(gpu, backend, item, stage, n, chunks)
    }

    /// Simulated cost of [`Executor::forall_pipelined`] for `n` items in
    /// `chunks` chunks, without running any host work: the full chunked
    /// H2D / compute / D2H schedule is charged to the sim's streams and
    /// copy engines exactly as `forall_pipelined` charges it. This is the
    /// auto-tuner's pipeline objective (`icoe::tune`), where the chunk
    /// count is a searched knob rather than a hand-picked constant.
    pub fn pipeline_cost(
        &mut self,
        gpu: usize,
        backend: Backend,
        item: &PerItem,
        stage: Staging,
        n: usize,
        chunks: usize,
    ) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let chunks = chunks.clamp(1, n);
        let chunk_len = n.div_ceil(chunks);
        let penalty = backend.penalty_on(self.sim.machine(), Policy::Device { gpu });

        let compute = StreamId::default_for(Target::gpu(gpu));
        let h2d_q = StreamId {
            target: Target::gpu(gpu),
            index: 1,
        };
        let d2h_q = StreamId {
            target: Target::gpu(gpu),
            index: 2,
        };

        // The pipeline's own start: nothing can begin before the upload
        // queue and engine are free.
        let start = self
            .sim
            .stream_time(h2d_q)
            .max(self.sim.engine_time(hetsim::Engine::H2d(gpu)));
        let mut kernel_done: Vec<hetsim::Event> = Vec::with_capacity(chunks);
        let mut last = hetsim::Event::at(start);

        let mut left = n;
        let mut c = 0usize;
        while left > 0 {
            let take = chunk_len.min(left);
            // Double buffering: chunk c reuses the staging buffer chunk
            // c - PIPELINE_BUFFERS computed out of.
            if c >= PIPELINE_BUFFERS {
                let ev = kernel_done[c - PIPELINE_BUFFERS];
                self.sim.wait_event(h2d_q, ev);
            }
            let takef = take as f64;
            let ev_in = if stage.h2d_per_item > 0.0 {
                self.sim.transfer_async(
                    Loc::Host,
                    Loc::Gpu(gpu),
                    takef * stage.h2d_per_item,
                    TransferKind::Memcpy,
                    h2d_q,
                )
            } else {
                self.sim.record(h2d_q)
            };
            self.sim.wait_event(compute, ev_in);
            let profile = item.profile("forall_pipelined", take, Policy::Device { gpu });
            let base_dt = self.sim.launch_on(compute, &profile);
            if penalty > 1.0 {
                self.sim.advance_stream(compute, base_dt * (penalty - 1.0));
            }
            let ev_k = self.sim.record(compute);
            kernel_done.push(ev_k);
            last = if stage.d2h_per_item > 0.0 {
                self.sim.wait_event(d2h_q, ev_k);
                self.sim.transfer_async(
                    Loc::Gpu(gpu),
                    Loc::Host,
                    takef * stage.d2h_per_item,
                    TransferKind::Memcpy,
                    d2h_q,
                )
            } else {
                ev_k
            };
            left -= take;
            c += 1;
        }
        let dt = last.time - start;
        let rec = self.sim.recorder();
        if rec.is_enabled() {
            rec.incr("portal.pipelines", 1.0);
            rec.incr("portal.pipeline.chunks", c as f64);
            rec.incr("portal.items", n as f64);
        }
        dt
    }

    /// Nested 2-D kernel (RAJA `kernel` analogue): run `f(i, j)` over the
    /// `ni x nj` index space in `tile x tile` blocks. Tiling matters on
    /// both targets — cache blocking on the host, shared-memory staging on
    /// the device — and the policy decides which cost model applies.
    pub fn kernel2d<F>(
        &mut self,
        policy: Policy,
        backend: Backend,
        item: &PerItem,
        (ni, nj): (usize, usize),
        tile: usize,
        f: F,
    ) -> f64
    where
        F: Fn(usize, usize) + Sync,
    {
        let tile = tile.max(1);
        let tiles_i = ni.div_ceil(tile);
        let tiles_j = nj.div_ceil(tile);
        let n_tiles = tiles_i * tiles_j;
        let threads = policy.host_threads(&self.sim);
        // Parallelise over tiles; each tile runs its block serially (the
        // thread-block structure of the device kernel).
        run_parallel(n_tiles, threads, &|t| {
            let ti = t / tiles_j;
            let tj = t % tiles_j;
            for i in (ti * tile)..((ti + 1) * tile).min(ni) {
                for j in (tj * tile)..((tj + 1) * tile).min(nj) {
                    f(i, j);
                }
            }
        });
        self.charge("kernel2d", ni * nj, policy, backend, item)
    }
}

#[cfg(test)]
mod pipeline_tests {
    use super::*;
    use hetsim::{machines, Sim};

    fn exec() -> Executor {
        Executor::new(Sim::new(machines::sierra_node()))
    }

    /// A workload where per-chunk copy time ≈ kernel time on sierra:
    /// 8 B/item over NVLink2 (68 GB/s) is ~0.118 ns/item; 550 flops/item
    /// against the V100's effective fp64 rate (7.8 Tflop/s x 0.6) is
    /// ~0.118 ns/item too. The three pipeline tracks are then balanced and
    /// the textbook `3T -> T(1 + 2/C)` shape appears.
    fn balanced() -> (PerItem, Staging) {
        let item = PerItem::new()
            .flops(550.0)
            .bytes_read(8.0)
            .bytes_written(8.0);
        (item, Staging::new(8.0, 8.0))
    }

    #[test]
    fn device_pool_is_bounded_by_the_machine_spec() {
        let e = exec();
        let pool = e.device_pool(0);
        let hbm = e.sim().machine().node.gpus[0].mem_capacity_gib * hetsim::GIB;
        assert_eq!(pool.capacity(), Some(hbm as u64));
        // Filling the device past its HBM capacity degrades to host
        // instead of silently fitting.
        let chunk = 1u64 << 30;
        let mut spills = 0;
        for _ in 0..20 {
            let (b, _) = pool.alloc(chunk);
            if b.spilled {
                spills += 1;
            }
        }
        assert_eq!(spills, 4, "16 GiB HBM fits 16 of 20 x 1 GiB blocks");
    }

    #[test]
    fn pipelined_writes_every_slot() {
        let mut e = exec();
        let (item, stage) = balanced();
        let mut v = vec![0usize; 100_000];
        e.forall_pipelined(0, Backend::Native, &item, stage, &mut v, 7, |i, s| {
            *s = i * 3 + 1;
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 3 + 1));
    }

    #[test]
    fn staged_and_pipelined_agree_numerically() {
        let (item, stage) = balanced();
        let n = 50_000;
        let mut a = vec![0.0f64; n];
        let mut b = vec![0.0f64; n];
        let f = |i: usize, s: &mut f64| *s = (i as f64).sqrt();
        exec().forall_staged(0, Backend::Native, &item, stage, &mut a, f);
        exec().forall_pipelined(0, Backend::Native, &item, stage, &mut b, 8, f);
        assert_eq!(a, b);
    }

    #[test]
    fn four_chunk_pipeline_beats_serial_staging_by_1_3x() {
        // Acceptance criterion: with copy ~ compute, >= 4 chunks must beat
        // the blocking upload/kernel/download baseline by >= 1.3x. The
        // model predicts ~2x (3T vs 1.5T) minus per-chunk overheads.
        let (item, stage) = balanced();
        let n = 1 << 22;
        let mut v = vec![0u8; n];
        let serial = exec().forall_staged(0, Backend::Native, &item, stage, &mut v, |_, _| {});
        let piped = exec().forall_pipelined(0, Backend::Native, &item, stage, &mut v, 4, |_, _| {});
        let speedup = serial / piped;
        assert!(
            speedup >= 1.3,
            "speedup {speedup} (serial {serial}, piped {piped})"
        );
    }

    #[test]
    fn more_chunks_help_until_latency_bites() {
        let (item, stage) = balanced();
        let n = 1 << 22;
        let mut v = vec![0u8; n];
        let mut t = |chunks| {
            exec().forall_pipelined(0, Backend::Native, &item, stage, &mut v, chunks, |_, _| {})
        };
        let t1 = t(1);
        let t4 = t(4);
        let t16 = t(16);
        // Per-chunk launch overhead (5 us) + copy latency (8 us) eventually
        // dominate: thousands of tiny chunks must lose to a modest count.
        let t4096 = t(4096);
        assert!(t4 < t1, "t4 {t4} t1 {t1}");
        assert!(t16 < t4, "t16 {t16} t4 {t4}");
        assert!(t4096 > t16, "t4096 {t4096} t16 {t16}");
    }

    #[test]
    fn timeline_shows_h2d_overlapping_kernels_on_distinct_tracks() {
        let mut e = exec();
        let rec = Recorder::enabled();
        e.set_recorder(rec.clone());
        let (item, stage) = balanced();
        let mut v = vec![0u8; 1 << 20];
        e.forall_pipelined(0, Backend::Native, &item, stage, &mut v, 6, |_, _| {});
        let spans = rec.spans();
        let h2d: Vec<_> = spans.iter().filter(|s| s.track == "gpu0.h2d").collect();
        let d2h: Vec<_> = spans.iter().filter(|s| s.track == "gpu0.d2h").collect();
        let kern: Vec<_> = spans.iter().filter(|s| s.track == "gpu0.s0").collect();
        assert_eq!(h2d.len(), 6);
        assert_eq!(d2h.len(), 6);
        assert_eq!(kern.len(), 6);
        // Overlap: some upload must be in flight while some kernel runs.
        let overlapping = h2d
            .iter()
            .any(|u| kern.iter().any(|k| u.start < k.end && k.start < u.end));
        assert!(overlapping, "no h2d span overlaps any kernel span");
        assert_eq!(rec.counter("portal.pipelines"), 1.0);
        assert_eq!(rec.counter("portal.pipeline.chunks"), 6.0);
    }

    #[test]
    fn empty_and_single_chunk_edge_cases() {
        let (item, stage) = balanced();
        let mut empty: Vec<u8> = vec![];
        assert_eq!(
            exec().forall_pipelined(0, Backend::Native, &item, stage, &mut empty, 4, |_, _| {}),
            0.0
        );
        // chunks = 0 clamps to 1 and still works.
        let mut one = vec![0u8; 10];
        let dt = exec().forall_pipelined(0, Backend::Native, &item, stage, &mut one, 0, |i, s| {
            *s = i as u8
        });
        assert!(dt > 0.0);
        assert_eq!(one[9], 9);
    }

    #[test]
    fn cost_only_helpers_match_the_real_loops_exactly() {
        // The auto-tuner evaluates `pipeline_cost` / `staged_cost` instead
        // of running host work; both must charge bit-identical schedules.
        let (item, stage) = balanced();
        let n = 1 << 20;
        let mut v = vec![0u8; n];
        let full = exec().forall_pipelined(0, Backend::Native, &item, stage, &mut v, 8, |_, _| {});
        let cost = exec().pipeline_cost(0, Backend::Native, &item, stage, n, 8);
        assert_eq!(full, cost);
        let full_s = exec().forall_staged(0, Backend::Native, &item, stage, &mut v, |_, _| {});
        let cost_s = exec().staged_cost(0, Backend::Native, &item, stage, n);
        assert_eq!(full_s, cost_s);
    }

    #[test]
    fn single_chunk_pipeline_matches_serial_within_tolerance() {
        // With one chunk there is nothing to overlap; the pipeline
        // degenerates to upload -> kernel -> download, same as staged.
        let (item, stage) = balanced();
        let n = 1 << 20;
        let mut v = vec![0u8; n];
        let serial = exec().forall_staged(0, Backend::Native, &item, stage, &mut v, |_, _| {});
        let piped = exec().forall_pipelined(0, Backend::Native, &item, stage, &mut v, 1, |_, _| {});
        let rel = (serial - piped).abs() / serial;
        assert!(rel < 1e-9, "serial {serial} piped {piped}");
    }
}

#[cfg(test)]
mod kernel2d_tests {
    use super::*;
    use hetsim::{machines, Sim};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn exec() -> Executor {
        Executor::new(Sim::new(machines::sierra_node()))
    }

    #[test]
    fn visits_every_index_exactly_once() {
        let mut e = exec();
        let (ni, nj) = (37, 53); // deliberately not tile multiples
        let hits = AtomicU64::new(0);
        let sum = AtomicU64::new(0);
        e.kernel2d(
            Policy::Threads(8),
            Backend::Native,
            &PerItem::new(),
            (ni, nj),
            16,
            |i, j| {
                hits.fetch_add(1, Ordering::Relaxed);
                sum.fetch_add((i * nj + j) as u64, Ordering::Relaxed);
            },
        );
        assert_eq!(hits.load(Ordering::Relaxed) as usize, ni * nj);
        let expect: u64 = (0..(ni * nj) as u64).sum();
        assert_eq!(sum.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn device_shared_tiling_is_cheaper_for_stencil_like_items() {
        let item = PerItem::new()
            .flops(10.0)
            .bytes_read(40.0)
            .bytes_written(8.0);
        let mut e1 = exec();
        let plain = e1.kernel2d(
            Policy::device(0),
            Backend::Native,
            &item,
            (1024, 1024),
            32,
            |_, _| {},
        );
        let mut e2 = exec();
        let tiled = e2.kernel2d(
            Policy::DeviceShared { gpu: 0 },
            Backend::Native,
            &item,
            (1024, 1024),
            32,
            |_, _| {},
        );
        assert!(tiled < plain, "{tiled} vs {plain}");
    }
}
