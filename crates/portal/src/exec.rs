//! Execution policies and the `forall` engine.

use hetsim::obs::Recorder;
use hetsim::{CostTerms, KernelProfile, LaunchClass, Sim, Target};

/// Where a loop executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Sequential host loop.
    Seq,
    /// `n` host threads (OpenMP-style fork-join).
    Threads(usize),
    /// Plain device kernel on GPU `gpu`.
    Device { gpu: usize },
    /// Device kernel that stages tiles through shared memory (§4.9).
    DeviceShared { gpu: usize },
    /// Device kernel reading through the texture path (§4.7).
    DeviceTexture { gpu: usize },
}

impl Policy {
    pub fn device(gpu: usize) -> Policy {
        Policy::Device { gpu }
    }

    pub fn is_device(&self) -> bool {
        matches!(
            self,
            Policy::Device { .. } | Policy::DeviceShared { .. } | Policy::DeviceTexture { .. }
        )
    }

    fn target(&self, _sim: &Sim) -> Target {
        match *self {
            Policy::Seq => Target::cpu(1),
            Policy::Threads(n) => Target::cpu(n),
            Policy::Device { gpu }
            | Policy::DeviceShared { gpu }
            | Policy::DeviceTexture { gpu } => Target::gpu(gpu),
        }
    }

    fn host_threads(&self, sim: &Sim) -> usize {
        match *self {
            Policy::Seq => 1,
            Policy::Threads(n) => n.max(1),
            // Device loops still execute on the host for verifiability; use
            // every core so real wall time stays low.
            _ => sim.machine().node.cpu.cores(),
        }
    }
}

/// How the kernel was authored. The portable abstraction pays the paper's
/// measured penalty: sw4lite saw RAJA within ~30 % of CUDA on device
/// (§4.9); host-side lambda overhead is small.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Hand-written CUDA / plain loops.
    #[default]
    Native,
    /// RAJA-style portable abstraction.
    Portal,
}

impl Backend {
    /// Time multiplier relative to a native kernel.
    pub fn penalty(&self, policy: Policy) -> f64 {
        match (self, policy.is_device()) {
            (Backend::Native, _) => 1.0,
            (Backend::Portal, true) => 1.3,
            (Backend::Portal, false) => 1.05,
        }
    }
}

/// Per-iteration cost description; multiplied by the trip count to build a
/// [`KernelProfile`].
///
/// This is a thin wrapper over [`hetsim::CostTerms`] — the *same* builder
/// core `KernelProfile` is made from — so the two cost APIs cannot drift.
/// `PerItem` derefs to its terms, so field reads (`item.flops`) keep
/// working.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PerItem {
    pub terms: CostTerms,
}

impl std::ops::Deref for PerItem {
    type Target = CostTerms;

    fn deref(&self) -> &CostTerms {
        &self.terms
    }
}

impl From<CostTerms> for PerItem {
    fn from(terms: CostTerms) -> PerItem {
        PerItem { terms }
    }
}

impl PerItem {
    pub fn new() -> PerItem {
        PerItem { terms: CostTerms::new() }
    }

    pub fn flops(self, f: f64) -> Self {
        PerItem { terms: self.terms.flops(f) }
    }

    pub fn bytes_read(self, b: f64) -> Self {
        PerItem { terms: self.terms.bytes_read(b) }
    }

    pub fn bytes_written(self, b: f64) -> Self {
        PerItem { terms: self.terms.bytes_written(b) }
    }

    pub fn bandwidth_eff(self, e: f64) -> Self {
        PerItem { terms: self.terms.bandwidth_eff(e) }
    }

    pub fn compute_eff(self, e: f64) -> Self {
        PerItem { terms: self.terms.compute_eff(e) }
    }

    /// Expand to a kernel profile for `n` iterations under `policy` — a
    /// thin scaling wrapper over [`KernelProfile::from_terms`].
    pub fn profile(&self, name: &str, n: usize, policy: Policy) -> KernelProfile {
        let nf = n as f64;
        let mut k = KernelProfile::from_terms(name, self.terms.scaled(nf)).parallelism(nf);
        match policy {
            Policy::Seq => k = k.launch_class(LaunchClass::HostSerial),
            Policy::Threads(_) => k = k.launch_class(LaunchClass::HostParallel),
            Policy::Device { .. } => {}
            Policy::DeviceShared { .. } => k = k.shared_mem(true),
            Policy::DeviceTexture { .. } => k = k.texture(true),
        }
        k
    }

}

/// Runs loops for real while charging a [`Sim`].
#[derive(Debug)]
pub struct Executor {
    sim: Sim,
}

impl Executor {
    pub fn new(sim: Sim) -> Executor {
        Executor { sim }
    }

    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    pub fn sim_mut(&mut self) -> &mut Sim {
        &mut self.sim
    }

    /// Attach an observability recorder to the underlying [`Sim`].
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.sim.set_recorder(recorder);
    }

    /// The underlying sim's recorder handle.
    pub fn recorder(&self) -> &Recorder {
        self.sim.recorder()
    }

    /// Cumulative activity counters of the underlying [`Sim`]
    /// (the same `counters()` shape `Sim` and `Network` expose).
    pub fn counters(&self) -> &hetsim::sim::Counters {
        self.sim.counters()
    }

    /// Reset the underlying sim's clocks and counters, keeping the machine
    /// and recorder.
    pub fn reset(&mut self) {
        self.sim.reset();
    }

    /// Simulated seconds elapsed so far.
    pub fn elapsed(&self) -> f64 {
        self.sim.elapsed()
    }

    fn charge(&mut self, name: &str, n: usize, policy: Policy, backend: Backend, item: &PerItem) -> f64 {
        let profile = item.profile(name, n, policy);
        let target = policy.target(&self.sim);
        let base = self.sim.launch(target, &profile);
        let dt = base * backend.penalty(policy);
        // `launch` advanced the stream by the unpenalised time; charge the
        // abstraction overhead on top.
        self.sim.advance(target, dt - base);
        let rec = self.sim.recorder();
        if rec.is_enabled() {
            rec.incr("portal.launches", 1.0);
            rec.incr("portal.items", n as f64);
            rec.incr("portal.overhead_s", dt - base);
        }
        dt
    }

    /// Read-only `forall`: run `f(i)` for `i in 0..n`. Returns simulated
    /// seconds.
    pub fn forall<F>(&mut self, policy: Policy, backend: Backend, item: &PerItem, n: usize, f: F) -> f64
    where
        F: Fn(usize) + Sync,
    {
        let threads = policy.host_threads(&self.sim);
        run_parallel(n, threads, &f);
        self.charge("forall", n, policy, backend, item)
    }

    /// `forall` over a mutable slice: `f(i, &mut out[i])`. The common "one
    /// output element per iteration" pattern, race-free by construction.
    pub fn forall_mut<T, F>(
        &mut self,
        policy: Policy,
        backend: Backend,
        item: &PerItem,
        out: &mut [T],
        f: F,
    ) -> f64
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let threads = policy.host_threads(&self.sim);
        let n = out.len();
        run_parallel_chunks(out, threads, |base, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                f(base + off, slot);
            }
        });
        self.charge("forall_mut", n, policy, backend, item)
    }

    /// Sum-reduction `forall`: returns `(sum of f(i), simulated seconds)`.
    pub fn forall_reduce_sum<F>(
        &mut self,
        policy: Policy,
        backend: Backend,
        item: &PerItem,
        n: usize,
        f: F,
    ) -> (f64, f64)
    where
        F: Fn(usize) -> f64 + Sync,
    {
        let threads = policy.host_threads(&self.sim);
        let sum = reduce_parallel(n, threads, &f);
        let dt = self.charge("reduce_sum", n, policy, backend, item);
        (sum, dt)
    }
}

/// Run `f(i)` for all i in 0..n across `threads` host threads.
pub fn run_parallel<F>(n: usize, threads: usize, f: &F)
where
    F: Fn(usize) + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n < 1024 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            s.spawn(move || {
                for i in lo..hi {
                    f(i);
                }
            });
        }
    });
}

/// Split `out` into per-thread chunks and run `f(base_index, chunk)`.
pub fn run_parallel_chunks<T, F>(out: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = out.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n < 1024 {
        f(0, out);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        let mut rest = out;
        let mut base = 0;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let b = base;
            let fr = &f;
            s.spawn(move || fr(b, head));
            rest = tail;
            base += take;
        }
    });
}

/// Deterministic parallel sum of `f(i)` for i in 0..n.
///
/// Partial sums are accumulated per fixed-size chunk and then added in chunk
/// order, so the result does not depend on thread scheduling.
pub fn reduce_parallel<F>(n: usize, threads: usize, f: &F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n < 1024 {
        return (0..n).map(f).sum();
    }
    let chunk = n.div_ceil(threads);
    let mut partials = vec![0.0f64; threads];
    std::thread::scope(|s| {
        for (t, slot) in partials.iter_mut().enumerate() {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            s.spawn(move || {
                let mut acc = 0.0;
                for i in lo..hi {
                    acc += f(i);
                }
                *slot = acc;
            });
        }
    });
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::machines;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn exec() -> Executor {
        Executor::new(Sim::new(machines::sierra_node()))
    }

    #[test]
    fn forall_visits_every_index() {
        let mut e = exec();
        let count = AtomicU64::new(0);
        e.forall(Policy::Threads(8), Backend::Native, &PerItem::new(), 10_000, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn forall_mut_writes_every_slot() {
        let mut e = exec();
        let mut v = vec![0usize; 5000];
        e.forall_mut(Policy::device(0), Backend::Portal, &PerItem::new(), &mut v, |i, s| {
            *s = i * 2;
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn reduction_matches_serial() {
        let mut e = exec();
        let item = PerItem::new().flops(1.0).bytes_read(8.0);
        let (par, _) =
            e.forall_reduce_sum(Policy::Threads(16), Backend::Native, &item, 100_000, |i| i as f64);
        let serial: f64 = (0..100_000).map(|i| i as f64).sum();
        assert_eq!(par, serial);
    }

    #[test]
    fn metrics_aggregate_across_forall_worker_threads() {
        // The multi-threaded story: worker threads share the recorder's
        // state through cheap clones, and the engine's own metrics land in
        // the same registry.
        let mut e = exec();
        let rec = Recorder::enabled();
        e.set_recorder(rec.clone());
        let n = 10_000;
        let rc = rec.clone();
        e.forall(
            Policy::Threads(8),
            Backend::Native,
            &PerItem::new().flops(1.0),
            n,
            move |_| rc.incr("app.items_seen", 1.0),
        );
        assert_eq!(rec.counter("app.items_seen"), n as f64);
        assert_eq!(rec.counter("portal.launches"), 1.0);
        assert_eq!(rec.counter("portal.items"), n as f64);
        assert_eq!(rec.counter("launches"), 1.0, "sim-level launch counted once");
        assert_eq!(rec.spans().len(), 1, "one kernel span for the whole forall");
    }

    #[test]
    fn executor_reset_and_counters_mirror_sim() {
        let mut e = exec();
        e.forall(Policy::device(0), Backend::Native, &PerItem::new().flops(4.0), 5000, |_| {});
        assert_eq!(e.counters().kernels_launched, 1);
        assert!(e.elapsed() > 0.0);
        e.reset();
        assert_eq!(e.counters().kernels_launched, 0);
        assert_eq!(e.elapsed(), 0.0);
    }

    #[test]
    fn per_item_is_a_thin_wrapper_over_cost_terms() {
        let item = PerItem::from(CostTerms::new().flops(3.0).bytes_read(8.0));
        // Deref keeps field reads working.
        assert_eq!(item.flops, 3.0);
        let k = item.profile("k", 100, Policy::device(0));
        assert_eq!(k.flops, 300.0);
        assert_eq!(k.bytes_read, 800.0);
        assert_eq!(k.parallelism, 100.0);
        assert_eq!(k.terms(), item.terms.scaled(100.0));
    }

    #[test]
    fn portal_backend_costs_more_on_device() {
        let item = PerItem::new().flops(10.0).bytes_read(24.0).bytes_written(8.0);
        let n = 1 << 20;
        let mut e1 = exec();
        let t_native = e1.forall(Policy::device(0), Backend::Native, &item, n, |_| {});
        let mut e2 = exec();
        let t_portal = e2.forall(Policy::device(0), Backend::Portal, &item, n, |_| {});
        let ratio = t_portal / t_native;
        assert!((ratio - 1.3).abs() < 0.01, "{ratio}");
    }

    #[test]
    fn shared_memory_policy_is_faster_for_stencils() {
        // §4.9: sw4lite stencil kernels improved ~2x with shared memory.
        let item = PerItem::new().flops(50.0).bytes_read(72.0).bytes_written(8.0);
        let n = 1 << 22;
        let mut e1 = exec();
        let plain = e1.forall(Policy::device(0), Backend::Native, &item, n, |_| {});
        let mut e2 = exec();
        let tiled = e2.forall(Policy::DeviceShared { gpu: 0 }, Backend::Native, &item, n, |_| {});
        assert!(plain / tiled > 1.5, "{}", plain / tiled);
    }

    #[test]
    fn device_beats_serial_host_on_streaming_loop() {
        let item = PerItem::new().flops(2.0).bytes_read(16.0).bytes_written(8.0);
        let n = 1 << 22;
        let mut e1 = exec();
        let dev = e1.forall(Policy::device(0), Backend::Native, &item, n, |_| {});
        let mut e2 = exec();
        let seq = e2.forall(Policy::Seq, Backend::Native, &item, n, |_| {});
        assert!(seq / dev > 5.0);
    }

    #[test]
    fn tiny_loops_lose_on_device_launch_overhead() {
        // The ParaDyn problem (§4.8): many small loops => launch-bound.
        let item = PerItem::new().flops(2.0).bytes_read(16.0);
        let n = 64;
        let mut e1 = exec();
        let mut dev = 0.0;
        for _ in 0..100 {
            dev += e1.forall(Policy::device(0), Backend::Native, &item, n, |_| {});
        }
        let mut e2 = exec();
        let mut host = 0.0;
        for _ in 0..100 {
            host += e2.forall(Policy::Threads(4), Backend::Native, &item, n, |_| {});
        }
        assert!(dev > 2.0 * host, "dev {dev} host {host}");
    }

    #[test]
    fn merged_loop_beats_many_small_launches() {
        // The ParaDyn fix: merging loops amortises launch overhead.
        let item = PerItem::new().flops(2.0).bytes_read(16.0);
        let mut e1 = exec();
        let mut many = 0.0;
        for _ in 0..50 {
            many += e1.forall(Policy::device(0), Backend::Native, &item, 1000, |_| {});
        }
        let mut e2 = exec();
        let merged = e2.forall(Policy::device(0), Backend::Native, &item, 50_000, |_| {});
        assert!(many > 5.0 * merged, "many {many} merged {merged}");
    }
}

impl Executor {
    /// Nested 2-D kernel (RAJA `kernel` analogue): run `f(i, j)` over the
    /// `ni x nj` index space in `tile x tile` blocks. Tiling matters on
    /// both targets — cache blocking on the host, shared-memory staging on
    /// the device — and the policy decides which cost model applies.
    pub fn kernel2d<F>(
        &mut self,
        policy: Policy,
        backend: Backend,
        item: &PerItem,
        (ni, nj): (usize, usize),
        tile: usize,
        f: F,
    ) -> f64
    where
        F: Fn(usize, usize) + Sync,
    {
        let tile = tile.max(1);
        let tiles_i = ni.div_ceil(tile);
        let tiles_j = nj.div_ceil(tile);
        let n_tiles = tiles_i * tiles_j;
        let threads = policy.host_threads(&self.sim);
        // Parallelise over tiles; each tile runs its block serially (the
        // thread-block structure of the device kernel).
        run_parallel(n_tiles, threads, &|t| {
            let ti = t / tiles_j;
            let tj = t % tiles_j;
            for i in (ti * tile)..((ti + 1) * tile).min(ni) {
                for j in (tj * tile)..((tj + 1) * tile).min(nj) {
                    f(i, j);
                }
            }
        });
        self.charge("kernel2d", ni * nj, policy, backend, item)
    }
}

#[cfg(test)]
mod kernel2d_tests {
    use super::*;
    use hetsim::{machines, Sim};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn exec() -> Executor {
        Executor::new(Sim::new(machines::sierra_node()))
    }

    #[test]
    fn visits_every_index_exactly_once() {
        let mut e = exec();
        let (ni, nj) = (37, 53); // deliberately not tile multiples
        let hits = AtomicU64::new(0);
        let sum = AtomicU64::new(0);
        e.kernel2d(
            Policy::Threads(8),
            Backend::Native,
            &PerItem::new(),
            (ni, nj),
            16,
            |i, j| {
                hits.fetch_add(1, Ordering::Relaxed);
                sum.fetch_add((i * nj + j) as u64, Ordering::Relaxed);
            },
        );
        assert_eq!(hits.load(Ordering::Relaxed) as usize, ni * nj);
        let expect: u64 = (0..(ni * nj) as u64).sum();
        assert_eq!(sum.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn device_shared_tiling_is_cheaper_for_stencil_like_items() {
        let item = PerItem::new().flops(10.0).bytes_read(40.0).bytes_written(8.0);
        let mut e1 = exec();
        let plain = e1.kernel2d(Policy::device(0), Backend::Native, &item, (1024, 1024), 32, |_, _| {});
        let mut e2 = exec();
        let tiled = e2.kernel2d(
            Policy::DeviceShared { gpu: 0 },
            Backend::Native,
            &item,
            (1024, 1024),
            32,
            |_, _| {},
        );
        assert!(tiled < plain, "{tiled} vs {plain}");
    }
}
