//! Parallel scans and min/max reductions (the rest of RAJA's reducer
//! family used by the iCoE codes: CFL reductions in CleverLeaf/SW4, max
//! errors in solvers, compaction scans in MD neighbor builds).

/// Deterministic parallel exclusive prefix sum (Blelloch two-pass over
/// chunks). `out[i] = sum of in[0..i]`; returns the total.
pub fn exclusive_scan(input: &[f64], out: &mut [f64], threads: usize) -> f64 {
    assert_eq!(input.len(), out.len());
    let n = input.len();
    if n == 0 {
        return 0.0;
    }
    let threads = threads.max(1).min(n);
    if threads == 1 || n < 2048 {
        let mut acc = 0.0;
        for i in 0..n {
            out[i] = acc;
            acc += input[i];
        }
        return acc;
    }
    let chunk = n.div_ceil(threads);
    // Pass 1: per-chunk sums.
    let mut sums = vec![0.0f64; threads];
    std::thread::scope(|s| {
        for (t, slot) in sums.iter_mut().enumerate() {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            let inp = &input[lo.min(n)..hi];
            s.spawn(move || {
                *slot = inp.iter().sum();
            });
        }
    });
    // Chunk offsets (serial over `threads` entries).
    let mut offsets = vec![0.0f64; threads];
    let mut acc = 0.0;
    for t in 0..threads {
        offsets[t] = acc;
        acc += sums[t];
    }
    // Pass 2: local scans with offsets.
    std::thread::scope(|s| {
        let mut rest = &mut out[..];
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            let (head, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            let inp = &input[lo..hi];
            let base = offsets[t];
            s.spawn(move || {
                let mut local = base;
                for (o, &v) in head.iter_mut().zip(inp) {
                    *o = local;
                    local += v;
                }
            });
        }
    });
    acc
}

/// Parallel min-reduction of `f(i)` over `0..n` (deterministic: min is
/// associative and commutative).
pub fn reduce_min<F>(n: usize, threads: usize, f: &F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    reduce_by(n, threads, f, f64::INFINITY, f64::min)
}

/// Parallel max-reduction of `f(i)` over `0..n`.
pub fn reduce_max<F>(n: usize, threads: usize, f: &F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    reduce_by(n, threads, f, f64::NEG_INFINITY, f64::max)
}

fn reduce_by<F>(n: usize, threads: usize, f: &F, init: f64, op: fn(f64, f64) -> f64) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n < 1024 {
        return (0..n).map(f).fold(init, op);
    }
    let chunk = n.div_ceil(threads);
    let mut partials = vec![init; threads];
    std::thread::scope(|s| {
        for (t, slot) in partials.iter_mut().enumerate() {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            s.spawn(move || {
                let mut acc = init;
                for i in lo..hi {
                    acc = op(acc, f(i));
                }
                *slot = acc;
            });
        }
    });
    partials.into_iter().fold(init, op)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_matches_serial_reference() {
        let n = 10_000;
        let input: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let mut par = vec![0.0; n];
        let mut ser = vec![0.0; n];
        let t_par = exclusive_scan(&input, &mut par, 8);
        let t_ser = exclusive_scan(&input, &mut ser, 1);
        assert_eq!(par, ser);
        assert!((t_par - t_ser).abs() < 1e-9);
    }

    #[test]
    fn scan_of_ones_is_indices() {
        let input = vec![1.0; 5000];
        let mut out = vec![0.0; 5000];
        let total = exclusive_scan(&input, &mut out, 4);
        assert_eq!(total, 5000.0);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as f64);
        }
    }

    #[test]
    fn empty_scan_is_zero() {
        let mut out: Vec<f64> = vec![];
        assert_eq!(exclusive_scan(&[], &mut out, 4), 0.0);
    }

    #[test]
    fn min_max_reductions() {
        let vals: Vec<f64> = (0..50_000)
            .map(|i| ((i * 37) % 1000) as f64 - 321.0)
            .collect();
        let vs = &vals;
        let mn = reduce_min(vals.len(), 8, &|i| vs[i]);
        let mx = reduce_max(vals.len(), 8, &|i| vs[i]);
        assert_eq!(mn, -321.0);
        assert_eq!(mx, 678.0);
    }

    #[test]
    fn reductions_match_serial_for_odd_sizes() {
        for n in [1usize, 2, 1023, 1025, 4097] {
            let f = |i: usize| ((i * 1103515245 + 12345) % 1000) as f64;
            assert_eq!(
                reduce_min(n, 8, &f),
                (0..n).map(f).fold(f64::INFINITY, f64::min)
            );
            assert_eq!(
                reduce_max(n, 8, &f),
                (0..n).map(f).fold(f64::NEG_INFINITY, f64::max)
            );
        }
    }
}
