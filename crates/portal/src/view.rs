//! Multi-dimensional index views (RAJA `View` analogues).
//!
//! The stencil codes (SW4, VBL, Cardioid diffusion, SAMRAI patches) index
//! flat arrays with 2-4D subscripts; these zero-cost views centralise the
//! layout math. Layout is row-major with the *last* index fastest, matching
//! the paper's C/C++ codes.

/// 2-D view shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct View2 {
    pub ni: usize,
    pub nj: usize,
}

impl View2 {
    pub fn new(ni: usize, nj: usize) -> View2 {
        View2 { ni, nj }
    }

    #[inline(always)]
    pub fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.ni && j < self.nj);
        i * self.nj + j
    }

    pub fn len(&self) -> usize {
        self.ni * self.nj
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// 3-D view shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct View3 {
    pub ni: usize,
    pub nj: usize,
    pub nk: usize,
}

impl View3 {
    pub fn new(ni: usize, nj: usize, nk: usize) -> View3 {
        View3 { ni, nj, nk }
    }

    #[inline(always)]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.ni && j < self.nj && k < self.nk);
        (i * self.nj + j) * self.nk + k
    }

    pub fn len(&self) -> usize {
        self.ni * self.nj * self.nk
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decompose a flat index back to (i, j, k).
    #[inline(always)]
    pub fn unflatten(&self, idx: usize) -> (usize, usize, usize) {
        let k = idx % self.nk;
        let j = (idx / self.nk) % self.nj;
        let i = idx / (self.nk * self.nj);
        (i, j, k)
    }
}

/// 4-D view shape (component-major field arrays, e.g. 3 displacement
/// components over a 3-D grid).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct View4 {
    pub nc: usize,
    pub ni: usize,
    pub nj: usize,
    pub nk: usize,
}

impl View4 {
    pub fn new(nc: usize, ni: usize, nj: usize, nk: usize) -> View4 {
        View4 { nc, ni, nj, nk }
    }

    #[inline(always)]
    pub fn idx(&self, c: usize, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(c < self.nc && i < self.ni && j < self.nj && k < self.nk);
        ((c * self.ni + i) * self.nj + j) * self.nk + k
    }

    pub fn len(&self) -> usize {
        self.nc * self.ni * self.nj * self.nk
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view2_roundtrip() {
        let v = View2::new(3, 5);
        let mut seen = vec![false; v.len()];
        for i in 0..3 {
            for j in 0..5 {
                seen[v.idx(i, j)] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn view3_unflatten_inverts_idx() {
        let v = View3::new(4, 6, 9);
        for i in 0..4 {
            for j in 0..6 {
                for k in 0..9 {
                    assert_eq!(v.unflatten(v.idx(i, j, k)), (i, j, k));
                }
            }
        }
    }

    #[test]
    fn last_index_is_contiguous() {
        let v = View3::new(2, 3, 7);
        assert_eq!(v.idx(0, 0, 1) - v.idx(0, 0, 0), 1);
        assert_eq!(v.idx(0, 1, 0) - v.idx(0, 0, 0), 7);
        assert_eq!(v.idx(1, 0, 0) - v.idx(0, 0, 0), 21);
    }

    #[test]
    fn view4_component_major() {
        let v = View4::new(3, 2, 2, 2);
        assert_eq!(v.idx(0, 0, 0, 0), 0);
        assert_eq!(v.idx(1, 0, 0, 0), 8);
        assert_eq!(v.len(), 24);
    }
}
