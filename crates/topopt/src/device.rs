//! The texture-cache study (§4.7 / §5).
//!
//! "Opt did not benefit from texture caching on the final system due to
//! improvements in Volta GPU caching. If this improvement was known in
//! advance, the team may have used RAJA rather than CUDA."

use hetsim::{KernelProfile, Machine, Target};

use crate::simp::SimpConfig;

/// Whether the matrix-free kernel reads gather data through texture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TextureUse {
    Off,
    On,
}

/// Cost of one matrix-free `K x` application on `machine`'s GPU 0.
/// `portal_backend` adds the RAJA abstraction penalty.
pub fn solver_step_cost(
    machine: &Machine,
    cfg: &SimpConfig,
    texture: TextureUse,
    portal_backend: bool,
) -> f64 {
    let sim = hetsim::Sim::new(machine.clone());
    let nel = (cfg.nelx * cfg.nely) as f64;
    // Per element: 8x8 MAC + gather/scatter of 8 dofs.
    let mut k = KernelProfile::new("topopt-matfree-kx")
        .flops(150.0 * nel)
        .bytes_read(8.0 * 8.0 * 2.0 * nel)
        .bytes_written(8.0 * 8.0 * nel)
        .parallelism(nel)
        // Gather/scatter of shared dofs is uncoalesced.
        .bandwidth_eff(0.45);
    if texture == TextureUse::On {
        k = k.texture(true);
    }
    let t = sim.cost(Target::gpu(0), &k);
    if portal_backend {
        // The machine's own portal-over-native calibration (1.3 on every
        // CUDA-class GPU the paper measured; varies on newer toolchains).
        t * machine.backend().device_factor
    } else {
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::machines;

    fn big() -> SimpConfig {
        SimpConfig {
            nelx: 1024,
            nely: 512,
            ..Default::default()
        }
    }

    #[test]
    fn texture_helps_on_pascal_ea_system() {
        let m = machines::ea_minsky();
        let off = solver_step_cost(&m, &big(), TextureUse::Off, false);
        let on = solver_step_cost(&m, &big(), TextureUse::On, false);
        assert!(on < 0.75 * off, "texture gain missing: {on} vs {off}");
    }

    #[test]
    fn texture_is_a_wash_on_volta_final_system() {
        let m = machines::sierra_node();
        let off = solver_step_cost(&m, &big(), TextureUse::Off, false);
        let on = solver_step_cost(&m, &big(), TextureUse::On, false);
        assert!((on / off - 1.0).abs() < 0.02, "{on} vs {off}");
    }

    #[test]
    fn raja_would_have_sufficed_on_volta() {
        // The §5 hindsight: on Volta, portable-RAJA-without-texture is
        // within its usual ~30 % of the tuned CUDA+texture kernel — not
        // the EA-era situation where texture was a further win on top.
        let ea = machines::ea_minsky();
        let volta = machines::sierra_node();
        let cuda_tex_ea = solver_step_cost(&ea, &big(), TextureUse::On, false);
        let raja_ea = solver_step_cost(&ea, &big(), TextureUse::Off, true);
        let gap_ea = raja_ea / cuda_tex_ea;
        let cuda_tex_volta = solver_step_cost(&volta, &big(), TextureUse::On, false);
        let raja_volta = solver_step_cost(&volta, &big(), TextureUse::Off, true);
        let gap_volta = raja_volta / cuda_tex_volta;
        assert!(
            gap_ea > gap_volta,
            "EA gap {gap_ea} vs Volta gap {gap_volta}"
        );
        assert!(gap_volta < 1.4, "{gap_volta}");
    }
}
