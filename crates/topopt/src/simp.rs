//! 2-D SIMP topology optimisation (classic 88-line structure, matrix-free).
//!
//! Domain: `nelx` x `nely` bilinear quad elements, cantilever load case
//! (left edge clamped, downward point load at the right mid-edge).
//! Per iteration: matrix-free PCG solve of `K(rho) u = f`, compliance +
//! sensitivities, mesh-independence density filter, optimality-criteria
//! update under a volume constraint.

/// The 8x8 unit element stiffness matrix for E = 1, nu = 0.3 (plane
/// stress) — the standard KE of the 88-line code.
pub fn element_stiffness() -> [[f64; 8]; 8] {
    let nu = 0.3;
    let k = [
        0.5 - nu / 6.0,
        0.125 + nu / 8.0,
        -0.25 - nu / 12.0,
        -0.125 + 3.0 * nu / 8.0,
        -0.25 + nu / 12.0,
        -0.125 - nu / 8.0,
        nu / 6.0,
        0.125 - 3.0 * nu / 8.0,
    ];
    let f = 1.0 / (1.0 - nu * nu);
    let idx: [[usize; 8]; 8] = [
        [0, 1, 2, 3, 4, 5, 6, 7],
        [1, 0, 7, 6, 5, 4, 3, 2],
        [2, 7, 0, 5, 6, 3, 4, 1],
        [3, 6, 5, 0, 7, 2, 1, 4],
        [4, 5, 6, 7, 0, 1, 2, 3],
        [5, 4, 3, 2, 1, 0, 7, 6],
        [6, 3, 4, 1, 2, 7, 0, 5],
        [7, 2, 1, 4, 3, 6, 5, 0],
    ];
    let mut ke = [[0.0; 8]; 8];
    for i in 0..8 {
        for j in 0..8 {
            ke[i][j] = f * k[idx[i][j]];
        }
    }
    ke
}

/// Configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimpConfig {
    pub nelx: usize,
    pub nely: usize,
    /// Volume fraction constraint.
    pub volfrac: f64,
    /// SIMP penalisation exponent.
    pub penal: f64,
    /// Filter radius in elements.
    pub rmin: f64,
    /// Optimisation iterations.
    pub iters: usize,
}

impl Default for SimpConfig {
    fn default() -> Self {
        SimpConfig {
            nelx: 24,
            nely: 12,
            volfrac: 0.4,
            penal: 3.0,
            rmin: 1.5,
            iters: 30,
        }
    }
}

/// Result of a run.
#[derive(Debug, Clone)]
pub struct SimpResult {
    pub density: Vec<f64>,
    pub compliance_history: Vec<f64>,
    pub cg_iters_total: usize,
}

/// The problem state.
pub struct SimpProblem {
    pub cfg: SimpConfig,
    ke: [[f64; 8]; 8],
    /// Element densities.
    pub rho: Vec<f64>,
    /// Load vector (2 dofs per node).
    f: Vec<f64>,
    /// Fixed dof flags.
    fixed: Vec<bool>,
}

impl SimpProblem {
    /// Cantilever: left edge clamped, point load at right mid-height.
    pub fn cantilever(cfg: SimpConfig) -> SimpProblem {
        let ndof = 2 * (cfg.nelx + 1) * (cfg.nely + 1);
        let mut f = vec![0.0; ndof];
        let mut fixed = vec![false; ndof];
        // Node numbering: column-major, node (ix, iy) -> ix*(nely+1)+iy.
        for iy in 0..=cfg.nely {
            let n = iy; // ix = 0
            fixed[2 * n] = true;
            fixed[2 * n + 1] = true;
        }
        let load_node = cfg.nelx * (cfg.nely + 1) + cfg.nely / 2;
        f[2 * load_node + 1] = -1.0;
        SimpProblem {
            rho: vec![cfg.volfrac; cfg.nelx * cfg.nely],
            ke: element_stiffness(),
            f,
            fixed,
            cfg,
        }
    }

    fn ndof(&self) -> usize {
        2 * (self.cfg.nelx + 1) * (self.cfg.nely + 1)
    }

    /// Element -> its 8 dof indices.
    fn edofs(&self, ex: usize, ey: usize) -> [usize; 8] {
        let nely = self.cfg.nely;
        let n1 = ex * (nely + 1) + ey;
        let n2 = (ex + 1) * (nely + 1) + ey;
        [
            2 * n1,
            2 * n1 + 1,
            2 * n2,
            2 * n2 + 1,
            2 * n2 + 2,
            2 * n2 + 3,
            2 * n1 + 2,
            2 * n1 + 3,
        ]
    }

    fn stiffness_of(&self, e: usize) -> f64 {
        let emin = 1e-9;
        emin + self.rho[e].powf(self.cfg.penal) * (1.0 - emin)
    }

    /// Matrix-free `y = K(rho) x` (the hot kernel).
    pub fn apply_k(&self, x: &[f64], y: &mut [f64]) {
        y.fill(0.0);
        for ex in 0..self.cfg.nelx {
            for ey in 0..self.cfg.nely {
                let e = ex * self.cfg.nely + ey;
                let s = self.stiffness_of(e);
                let dofs = self.edofs(ex, ey);
                let mut local = [0.0; 8];
                for (a, &d) in dofs.iter().enumerate() {
                    local[a] = if self.fixed[d] { 0.0 } else { x[d] };
                }
                for a in 0..8 {
                    if self.fixed[dofs[a]] {
                        continue;
                    }
                    let mut acc = 0.0;
                    for b in 0..8 {
                        acc += self.ke[a][b] * local[b];
                    }
                    y[dofs[a]] += s * acc;
                }
            }
        }
        for (d, yd) in y.iter_mut().enumerate() {
            if self.fixed[d] {
                *yd = x[d];
            }
        }
    }

    /// Jacobi-preconditioned CG solve; returns (u, iterations).
    pub fn solve(&self, tol: f64, max_iter: usize) -> (Vec<f64>, usize) {
        let n = self.ndof();
        // Diagonal of K for the preconditioner.
        let mut diag = vec![0.0; n];
        for ex in 0..self.cfg.nelx {
            for ey in 0..self.cfg.nely {
                let e = ex * self.cfg.nely + ey;
                let s = self.stiffness_of(e);
                for (a, &d) in self.edofs(ex, ey).iter().enumerate() {
                    diag[d] += s * self.ke[a][a];
                }
            }
        }
        for (d, v) in diag.iter_mut().enumerate() {
            if self.fixed[d] || *v <= 0.0 {
                *v = 1.0;
            }
        }
        let mut u = vec![0.0; n];
        let mut r = self.f.clone();
        for (d, rd) in r.iter_mut().enumerate() {
            if self.fixed[d] {
                *rd = 0.0;
            }
        }
        let bnorm = r.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
        let mut z: Vec<f64> = r.iter().zip(&diag).map(|(a, d)| a / d).collect();
        let mut p = z.clone();
        let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let mut ap = vec![0.0; n];
        let mut iters = 0;
        for _ in 0..max_iter {
            let rnorm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
            if rnorm / bnorm < tol {
                break;
            }
            iters += 1;
            self.apply_k(&p, &mut ap);
            let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
            let alpha = rz / pap.max(1e-300);
            for i in 0..n {
                u[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            for i in 0..n {
                z[i] = r[i] / diag[i];
            }
            let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
            let beta = rz_new / rz.max(1e-300);
            rz = rz_new;
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
            }
        }
        (u, iters)
    }

    /// Compliance and per-element sensitivities for displacement `u`.
    pub fn compliance(&self, u: &[f64]) -> (f64, Vec<f64>) {
        let mut total = 0.0;
        let mut sens = vec![0.0; self.rho.len()];
        for ex in 0..self.cfg.nelx {
            for ey in 0..self.cfg.nely {
                let e = ex * self.cfg.nely + ey;
                let dofs = self.edofs(ex, ey);
                let mut ue = [0.0; 8];
                for (a, &d) in dofs.iter().enumerate() {
                    ue[a] = u[d];
                }
                let mut uku = 0.0;
                for a in 0..8 {
                    for b in 0..8 {
                        uku += ue[a] * self.ke[a][b] * ue[b];
                    }
                }
                total += self.stiffness_of(e) * uku;
                sens[e] = -self.cfg.penal * self.rho[e].powf(self.cfg.penal - 1.0) * uku;
            }
        }
        (total, sens)
    }

    /// Mesh-independence filter: distance-weighted average of
    /// sensitivities.
    pub fn filter(&self, sens: &[f64]) -> Vec<f64> {
        let (nelx, nely) = (self.cfg.nelx, self.cfg.nely);
        let r = self.cfg.rmin;
        let reach = r.ceil() as isize;
        let mut out = vec![0.0; sens.len()];
        for ex in 0..nelx as isize {
            for ey in 0..nely as isize {
                let mut num = 0.0;
                let mut den = 0.0;
                for dx in -reach..=reach {
                    for dy in -reach..=reach {
                        let (jx, jy) = (ex + dx, ey + dy);
                        if jx < 0 || jy < 0 || jx >= nelx as isize || jy >= nely as isize {
                            continue;
                        }
                        let dist = ((dx * dx + dy * dy) as f64).sqrt();
                        let w = (r - dist).max(0.0);
                        let j = (jx as usize) * nely + jy as usize;
                        num += w * self.rho[j] * sens[j];
                        den += w;
                    }
                }
                let e = (ex as usize) * nely + ey as usize;
                out[e] = num / (den * self.rho[e].max(1e-3));
            }
        }
        out
    }

    /// Optimality-criteria update with bisection on the volume multiplier.
    pub fn oc_update(&mut self, sens: &[f64]) {
        let move_limit = 0.2;
        let target = self.cfg.volfrac * self.rho.len() as f64;
        let (mut l1, mut l2) = (1e-9f64, 1e9f64);
        let old = self.rho.clone();
        while (l2 - l1) / (l1 + l2) > 1e-6 {
            let lmid = 0.5 * (l1 + l2);
            let mut vol = 0.0;
            for (e, r) in self.rho.iter_mut().enumerate() {
                let be = (-sens[e] / lmid).max(0.0).sqrt();
                let cand = (old[e] * be)
                    .clamp(old[e] - move_limit, old[e] + move_limit)
                    .clamp(1e-3, 1.0);
                *r = cand;
                vol += cand;
            }
            if vol > target {
                l1 = lmid;
            } else {
                l2 = lmid;
            }
        }
    }

    /// Run the full optimisation.
    pub fn optimize(&mut self) -> SimpResult {
        let mut history = Vec::with_capacity(self.cfg.iters);
        let mut cg_total = 0;
        for _ in 0..self.cfg.iters {
            let (u, it) = self.solve(1e-7, 3000);
            cg_total += it;
            let (c, sens) = self.compliance(&u);
            history.push(c);
            let filtered = self.filter(&sens);
            self.oc_update(&filtered);
        }
        SimpResult {
            density: self.rho.clone(),
            compliance_history: history,
            cg_iters_total: cg_total,
        }
    }

    pub fn volume_fraction(&self) -> f64 {
        self.rho.iter().sum::<f64>() / self.rho.len() as f64
    }

    /// The MBB half-beam (the 88-line code's canonical case): symmetric
    /// left edge (x-rollers), bottom-right corner support, downward load
    /// at the top-left corner.
    pub fn mbb_beam(cfg: SimpConfig) -> SimpProblem {
        let ndof = 2 * (cfg.nelx + 1) * (cfg.nely + 1);
        let mut f = vec![0.0; ndof];
        let mut fixed = vec![false; ndof];
        // Node (ix, iy): ix*(nely+1)+iy; iy = 0 is the TOP row here.
        for iy in 0..=cfg.nely {
            fixed[2 * iy] = true; // x-symmetry on the left edge
        }
        let corner = cfg.nelx * (cfg.nely + 1) + cfg.nely;
        fixed[2 * corner + 1] = true; // roller at bottom-right
        f[1] = -1.0; // load at top-left, downward
        SimpProblem {
            rho: vec![cfg.volfrac; cfg.nelx * cfg.nely],
            ke: element_stiffness(),
            f,
            fixed,
            cfg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_stiffness_is_symmetric_psd_ish() {
        let ke = element_stiffness();
        for i in 0..8 {
            assert!(ke[i][i] > 0.0);
            for j in 0..8 {
                assert!((ke[i][j] - ke[j][i]).abs() < 1e-12);
            }
        }
        // Rigid-body translation is in the null space.
        let ones_x = [1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        for i in 0..8 {
            let s: f64 = (0..8).map(|j| ke[i][j] * ones_x[j]).sum();
            assert!(s.abs() < 1e-12, "row {i}: {s}");
        }
    }

    #[test]
    fn solve_gives_downward_deflection_at_load() {
        let p = SimpProblem::cantilever(SimpConfig {
            iters: 1,
            ..Default::default()
        });
        let (u, iters) = p.solve(1e-8, 5000);
        assert!(iters > 0);
        let load_node = p.cfg.nelx * (p.cfg.nely + 1) + p.cfg.nely / 2;
        assert!(
            u[2 * load_node + 1] < 0.0,
            "tip moved up: {}",
            u[2 * load_node + 1]
        );
        // Clamped edge does not move.
        assert_eq!(u[0], 0.0);
        assert_eq!(u[1], 0.0);
    }

    #[test]
    fn apply_k_is_symmetric() {
        let p = SimpProblem::cantilever(SimpConfig::default());
        let n = 2 * (p.cfg.nelx + 1) * (p.cfg.nely + 1);
        let x: Vec<f64> = (0..n).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 13 % 11) as f64) - 5.0).collect();
        let mut kx = vec![0.0; n];
        let mut ky = vec![0.0; n];
        p.apply_k(&x, &mut kx);
        p.apply_k(&y, &mut ky);
        let xky: f64 = x.iter().zip(&ky).map(|(a, b)| a * b).sum();
        let ykx: f64 = y.iter().zip(&kx).map(|(a, b)| a * b).sum();
        assert!((xky - ykx).abs() < 1e-8 * xky.abs().max(1.0));
    }

    #[test]
    fn optimisation_reduces_compliance() {
        let mut p = SimpProblem::cantilever(SimpConfig {
            iters: 15,
            ..Default::default()
        });
        let r = p.optimize();
        let first = r.compliance_history[0];
        let last = *r.compliance_history.last().expect("non-empty");
        assert!(last < 0.7 * first, "compliance {first} -> {last}");
    }

    #[test]
    fn volume_constraint_is_respected() {
        let mut p = SimpProblem::cantilever(SimpConfig {
            iters: 10,
            ..Default::default()
        });
        p.optimize();
        let v = p.volume_fraction();
        assert!((v - 0.4).abs() < 0.02, "volume fraction {v}");
    }

    #[test]
    fn material_concentrates_into_structure() {
        // After optimisation the density field should be mostly black and
        // white, not grey.
        let mut p = SimpProblem::cantilever(SimpConfig {
            iters: 25,
            ..Default::default()
        });
        let r = p.optimize();
        let solid = r.density.iter().filter(|&&d| d > 0.8).count();
        let void = r.density.iter().filter(|&&d| d < 0.2).count();
        let n = r.density.len();
        assert!(
            solid + void > n / 2,
            "too grey: solid {solid} void {void} of {n}"
        );
        assert!(solid > 0 && void > 0);
    }
}

#[cfg(test)]
mod mbb_tests {
    use super::*;

    #[test]
    fn mbb_beam_optimises_and_respects_volume() {
        let mut p = SimpProblem::mbb_beam(SimpConfig {
            nelx: 30,
            nely: 10,
            iters: 15,
            ..Default::default()
        });
        let r = p.optimize();
        let first = r.compliance_history[0];
        let last = *r.compliance_history.last().expect("non-empty");
        assert!(last < 0.8 * first, "compliance {first} -> {last}");
        assert!((p.volume_fraction() - p.cfg.volfrac).abs() < 0.02);
    }

    #[test]
    fn mbb_and_cantilever_produce_different_structures() {
        let cfg = SimpConfig {
            nelx: 24,
            nely: 8,
            iters: 12,
            ..Default::default()
        };
        let mut a = SimpProblem::cantilever(cfg);
        let mut b = SimpProblem::mbb_beam(cfg);
        let ra = a.optimize();
        let rb = b.optimize();
        let diff: f64 = ra
            .density
            .iter()
            .zip(&rb.density)
            .map(|(x, y)| (x - y).abs())
            .sum::<f64>()
            / ra.density.len() as f64;
        assert!(
            diff > 0.1,
            "load cases should shape different structures: {diff}"
        );
    }
}
