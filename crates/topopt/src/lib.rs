//! `topopt` — the Opt activity's GPU kernel (§4.7).
//!
//! The Optimization Framework designs structures (the paper's drone, Fig 5)
//! by SIMP topology optimisation: "a matrix-free solver implemented in CUDA
//! and texture cache memory" gave good performance on the EA system —
//! "however, Opt did not benefit from texture caching on the final system
//! due to improvements in Volta GPU caching".
//!
//! * [`simp`] — 2-D SIMP: bilinear quad elasticity, matrix-free
//!   preconditioned CG (the hot kernel), density filtering, and the
//!   optimality-criteria update;
//! * [`device`] — the texture-cache study across the EA (P100) and final
//!   (V100) machines.

pub mod device;
pub mod simp;

pub use device::{solver_step_cost, TextureUse};
pub use simp::{SimpConfig, SimpProblem, SimpResult};
