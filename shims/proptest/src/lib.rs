//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro, `ProptestConfig::with_cases`, range and
//! tuple strategies, `prop::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! * generation is **deterministic** — the RNG is seeded from the test
//!   function's name, so failures reproduce without a persistence file;
//! * there is **no shrinking** — the failing inputs are printed instead;
//! * rejection via `prop_assume!` retries the case, with a global cap so a
//!   pathological assumption cannot loop forever.

pub mod strategy;

pub use strategy::{collection, Strategy};

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test runs.
    pub cases: usize,
    /// Maximum rejected cases (via `prop_assume!`) before giving up.
    pub max_global_rejects: usize,
}

impl ProptestConfig {
    pub fn with_cases(cases: usize) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: try another input, don't count the case.
    Reject(String),
    /// An assertion failed: the property is false for this input.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

pub mod test_runner {
    pub use crate::strategy::TestRng;
    pub use crate::{ProptestConfig, TestCaseError};
}

/// What `use proptest::prelude::*` brings in.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
    };

    /// The `prop::` namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::strategy::collection;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), l, r);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The property-test block macro. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items (each usually annotated
/// `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::strategy::TestRng::for_test(stringify!($name));
                let mut accepted = 0usize;
                let mut rejected = 0usize;
                while accepted < config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    // Render inputs eagerly so the test body is free to move
                    // the generated values.
                    let inputs: String = {
                        let mut s = String::new();
                        $( s.push_str(&format!("  {} = {:?}\n", stringify!($arg), &$arg)); )+
                        s
                    };
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject(why)) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "proptest '{}': too many prop_assume! rejections ({}): {}",
                                    stringify!($name), rejected, why
                                );
                            }
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed at case {}/{}:\n{}\nfailing input (no shrinking):\n{}",
                                stringify!($name), accepted + 1, config.cases, msg, inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}
