//! Generation strategies for the proptest shim.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic per-test RNG (seeded from the test name, so every run of
/// a given test sees the same case sequence).
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A constant strategy (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident/$idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification: an exact size or a range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// `prop::collection::vec(element_strategy, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::collection::vec;
    use super::{Strategy, TestRng};

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_test("ranges_and_tuples");
        for _ in 0..1000 {
            let (a, b, c) = (0usize..8, 5u64..6, -1.0f64..1.0).generate(&mut rng);
            assert!(a < 8);
            assert_eq!(b, 5);
            assert!((-1.0..1.0).contains(&c));
        }
    }

    #[test]
    fn vec_respects_size_specs() {
        let mut rng = TestRng::for_test("vec_sizes");
        for _ in 0..200 {
            let exact = vec(0.0f64..1.0, 8).generate(&mut rng);
            assert_eq!(exact.len(), 8);
            let ranged = vec(0usize..5, 2..6).generate(&mut rng);
            assert!((2..6).contains(&ranged.len()));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        let s = vec(0u64..1000, 0..50);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
