//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()` returns a guard directly (a poisoned std lock is recovered
//! rather than propagated, matching parking_lot's "no poisoning"
//! semantics). Performance is std's, which is more than adequate for the
//! pool-accounting and observability paths that use it here.

use std::sync;

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
