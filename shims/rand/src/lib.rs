//! Offline stand-in for the `rand` crate.
//!
//! The build container for this repository has no crates.io access, so the
//! tiny slice of the `rand 0.8` API the workspace actually uses is
//! re-implemented here: [`rngs::SmallRng`] (a xoshiro256++ generator seeded
//! through SplitMix64 — the same family upstream `SmallRng` uses on 64-bit
//! targets), [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen`, `gen_range`, and `gen_bool`.
//!
//! Streams are **deterministic across runs** (no entropy source is
//! consulted) but are *not* bit-compatible with upstream `rand`; every test
//! in this workspace only relies on determinism, not on specific streams.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`]
/// (upstream calls this the `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Ranges that [`Rng::gen_range`] accepts. Mirrors upstream's
/// `SampleRange<T>` shape so the element type `T` is inferred from the use
/// site (e.g. a slice index makes `gen_range(0..5)` produce a `usize`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::RangeInclusive<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f32::sample(rng) * (hi - lo)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing extension trait (auto-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Deterministic seeding (upstream's `SeedableRng`, reduced to the one
/// constructor this workspace calls).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;

    /// Upstream pulls OS entropy here; offline we fix an arbitrary seed so
    /// behaviour stays reproducible.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9E3779B97F4A7C15)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid; the same
    /// algorithm family upstream `SmallRng` uses on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut st = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut st);
            }
            // Avoid the all-zero state (unreachable from splitmix64, but
            // cheap to guard).
            if s == [0; 4] {
                s[0] = 1;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
            let k = r.gen_range(3usize..9);
            assert!((3..9).contains(&k));
            let s = r.gen_range(-5i64..-1);
            assert!((-5..-1).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "{frac}");
    }

    #[test]
    fn mean_of_unit_samples_is_half() {
        let mut r = SmallRng::seed_from_u64(4);
        let mean: f64 = (0..50_000).map(|_| r.gen::<f64>()).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }
}
