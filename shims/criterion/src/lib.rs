//! Offline stand-in for `criterion`.
//!
//! Provides enough of the criterion 0.5 API for this workspace's benches
//! to compile and produce useful numbers without crates.io access:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: per benchmark, a warm-up phase sizes the batch so one
//! sample lasts roughly `measurement_time / sample_size`, then
//! `sample_size` samples are timed and min / median / mean are reported.
//! No plots, no statistics beyond that — this is a smoke-and-regression
//! harness, not a statistics engine.
//!
//! Passing `--quick` (or setting `ICOE_BENCH_QUICK=1`) caps every
//! benchmark at one short sample, which keeps `cargo bench` usable as a
//! compile-and-run smoke test in CI.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` should amortise setup cost. The shim treats all
/// variants identically (setup is always excluded from timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness configuration + runner.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let quick = std::env::args().any(|a| a == "--quick" || a == "--test")
            || std::env::var_os("ICOE_BENCH_QUICK").is_some();
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(500),
            quick,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark and print a `name  time/iter` line.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, warm_up, measurement) = if self.quick {
            (2, Duration::from_millis(5), Duration::from_millis(10))
        } else {
            (self.sample_size, self.warm_up_time, self.measurement_time)
        };
        let mut b = Bencher {
            mode: Mode::Calibrate {
                deadline: Instant::now() + warm_up,
                iters_done: 0,
            },
            iters_per_sample: 1,
            samples: Vec::new(),
        };
        // Warm-up / calibration pass.
        f(&mut b);
        let per_iter = match b.mode {
            Mode::Calibrate { iters_done, .. } if iters_done > 0 => {
                warm_up.as_secs_f64() / iters_done as f64
            }
            _ => 1e-6,
        };
        let per_sample = measurement.as_secs_f64() / sample_size as f64;
        let iters = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        b.mode = Mode::Measure {
            samples_left: sample_size,
        };
        b.iters_per_sample = iters;
        b.samples.clear();
        f(&mut b);
        report(name, iters, &mut b.samples);
        self
    }

    /// Compatibility no-op (upstream finalises plots here).
    pub fn final_summary(&mut self) {}
}

enum Mode {
    /// Run as many iterations as fit before `deadline`.
    Calibrate { deadline: Instant, iters_done: u64 },
    /// Take `samples_left` timed samples of `iters_per_sample` iterations.
    Measure { samples_left: usize },
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    mode: Mode,
    iters_per_sample: u64,
    /// Seconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match self.mode {
            Mode::Calibrate {
                deadline,
                ref mut iters_done,
            } => loop {
                black_box(routine());
                *iters_done += 1;
                if Instant::now() >= deadline {
                    break;
                }
            },
            Mode::Measure { samples_left } => {
                for _ in 0..samples_left {
                    let start = Instant::now();
                    for _ in 0..self.iters_per_sample {
                        black_box(routine());
                    }
                    let dt = start.elapsed().as_secs_f64();
                    self.samples.push(dt / self.iters_per_sample as f64);
                }
            }
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Calibrate {
                deadline,
                ref mut iters_done,
            } => loop {
                let input = setup();
                black_box(routine(input));
                *iters_done += 1;
                if Instant::now() >= deadline {
                    break;
                }
            },
            Mode::Measure { samples_left } => {
                for _ in 0..samples_left {
                    let inputs: Vec<I> = (0..self.iters_per_sample).map(|_| setup()).collect();
                    let start = Instant::now();
                    for input in inputs {
                        black_box(routine(input));
                    }
                    let dt = start.elapsed().as_secs_f64();
                    self.samples.push(dt / self.iters_per_sample as f64);
                }
            }
        }
    }

    /// Like `iter_batched` but the routine takes `&mut I`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), size)
    }
}

fn report(name: &str, iters: u64, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("{name:<40} <no samples>");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name:<40} min {:>10}  median {:>10}  mean {:>10}  ({} samples x {} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        samples.len(),
        iters
    );
}

fn fmt_ns(seconds: f64) -> String {
    let ns = seconds * 1e9;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Define a named group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_measures_something() {
        let mut c = Criterion::default().sample_size(3);
        c.quick = true;
        let mut ran = 0u64;
        c.bench_function("shim/self_test", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn batched_runs_setup_per_input() {
        let mut c = Criterion {
            quick: true,
            ..Criterion::default()
        };
        c.bench_function("shim/batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn formats_cover_magnitudes() {
        assert!(fmt_ns(5e-9).contains("ns"));
        assert!(fmt_ns(5e-6).contains("us"));
        assert!(fmt_ns(5e-3).contains("ms"));
        assert!(fmt_ns(5.0).contains(" s"));
    }
}
