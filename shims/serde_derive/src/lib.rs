//! No-op derive macros backing the offline `serde` shim.
//!
//! `#[derive(Serialize, Deserialize)]` expands to nothing; the marker-trait
//! blanket impls live in the `serde` shim crate. `#[serde(...)]` helper
//! attributes are accepted (and ignored) so annotated types keep compiling.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
