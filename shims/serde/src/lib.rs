//! Offline stand-in for `serde`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata
//! (all JSON emitted in this repository is hand-rolled — see
//! `hetsim::obs::json`), so this shim provides the two marker traits and
//! re-exports no-op derive macros. Nothing in-tree calls serialization
//! methods; if a future change needs real serialization, extend
//! `hetsim::obs::json` instead of this crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker: the type opted into serialization via derive.
pub trait Serialize {}

/// Marker: the type opted into deserialization via derive.
pub trait Deserialize<'de> {}

// Blanket impls keep any `T: Serialize` style bound satisfiable.
impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// `serde::de` stub namespace (kept so `use serde::de::...` paths can be
/// introduced later without touching this shim's layout).
pub mod de {
    pub use crate::Deserialize;
}

/// `serde::ser` stub namespace.
pub mod ser {
    pub use crate::Serialize;
}
