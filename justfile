# Development tasks. Run `just` for the default check pipeline.
# The workspace builds fully offline: external deps are vendored shims.

default: ci

# Everything CI runs, in order.
ci: build test clippy

build:
    cargo build --workspace --release --offline

test:
    cargo test --workspace --offline -q

# Pervasive seed-style lints are allowed wholesale; everything else is denied.
clippy:
    cargo clippy --workspace --all-targets --offline -- -D warnings \
        -A clippy::needless_range_loop \
        -A clippy::too_many_arguments \
        -A clippy::should_implement_trait

fmt:
    cargo fmt --all --check

# Regenerate every paper artifact, writing BENCH_<id>.json files to out/.
experiments:
    ICOE_BENCH_DIR=out cargo run --release --offline -p bench --bin experiments -- all

# The §4.10.1 oversubscription cliff, with UM migrations on the copy engines.
um-smoke:
    cargo run --release --offline -p bench --bin experiments -- um-oversubscription --json --timeline --bench-dir out

# The collectives sweep: flat vs hierarchical vs overlapped allreduce, with
# per-rank NIC injection tracks on the timeline.
net-smoke:
    cargo run --release --offline -p bench --bin experiments -- collective-overlap --json --timeline --bench-dir out

# Parallel-engine conformance: `all --jobs 4` must be byte-identical to
# `--jobs 1` (modulo the per-document wall-clock field), in paper order.
par-smoke:
    #!/usr/bin/env bash
    set -euo pipefail
    cargo build --release --offline -p bench --bin experiments
    bin=target/release/experiments
    time "$bin" all --json --jobs 4 > out_par.json
    time "$bin" all --json --jobs 1 > out_ser.json
    sed -E 's/"elapsed_s":[0-9.eE+-]+/"elapsed_s":0/g' out_par.json > out_par.norm
    sed -E 's/"elapsed_s":[0-9.eE+-]+/"elapsed_s":0/g' out_ser.json > out_ser.norm
    cmp out_par.norm out_ser.norm
    echo "parallel output byte-identical to serial"
    rm -f out_par.json out_ser.json out_par.norm out_ser.norm

# The auto-tuner rediscovering the paper's crossovers (pipeline chunks,
# hierarchical allreduce at 64 nodes, the UM knee) from the cost model.
tune-smoke:
    cargo run --release --offline -p bench --bin experiments -- auto-tune --json --bench-dir out

# The portability matrix: the registry across every MATRIX machine preset
# (machine-sensitive experiments re-run per column, the rest reuse their
# sierra cells), then the classified Sierra-specific vs
# architecture-invariant conclusions.
matrix-smoke:
    cargo run --release --offline -p bench --bin experiments -- matrix --jobs 4
    cargo run --release --offline -p bench --bin experiments -- portability-matrix --json --bench-dir out

# Rewrite tests/golden/ after an *intentional* output change, then show
# what moved. Committed goldens are the conformance contract in CI.
golden-update:
    UPDATE_GOLDEN=1 cargo test --offline -p xtests --test golden_determinism
    git diff --stat tests/golden

# The fleet-serving layer: spike survival + policy shoot-out, with the
# SLA/joules gauges and the `cluster` timeline track.
cluster-smoke:
    cargo run --release --offline -p bench --bin experiments -- cluster-spike --json --timeline --bench-dir out
    cargo run --release --offline -p bench --bin experiments -- cluster-policies --json --timeline --bench-dir out

bench:
    cargo bench --workspace --offline

# Observability hot-path + parallel-engine benches only (quick mode).
bench-recorder:
    ICOE_BENCH_QUICK=1 cargo bench --offline -p bench --bench recorder

# The incremental cluster-serving loop: the criterion sweep (jobs x fleet
# x policy), the 1M-job FCFS acceptance probe, and the steady-state
# allocation audit, then the registered throughput experiment with its
# wall-clock jobs-per-second floor on stderr.
cluster-bench:
    #!/usr/bin/env bash
    set -euo pipefail
    cargo bench --offline -p bench --bench cluster
    cargo run --release --offline -p bench --bin experiments -- cluster-throughput --json --bench-dir out 2> ct.txt > /dev/null
    grep "cluster.jobs_per_s" ct.txt
    jps=$(awk '/^cluster.jobs_per_s / { print $2 }' ct.txt)
    awk -v j="$jps" 'BEGIN { exit !(j >= 100000) }'
    rm -f ct.txt

# The unified des kernel's scale probe: deterministic simulated metrics in
# the document, wall-clock ranks-per-host-second on stderr, plus the
# criterion rank sweep to 1M ranks.
des-smoke:
    #!/usr/bin/env bash
    set -euo pipefail
    cargo run --release --offline -p bench --bin experiments -- rank-throughput --json --bench-dir out 2> des.txt > /dev/null
    grep "des.ranks_per_s" des.txt
    rps=$(awk '/^des.ranks_per_s / { print $2 }' des.txt)
    awk -v r="$rps" 'BEGIN { exit !(r >= 100000) }'
    rm -f des.txt
    cargo bench --offline -p bench --bench des
