# Development tasks. Run `just` for the default check pipeline.
# The workspace builds fully offline: external deps are vendored shims.

default: ci

# Everything CI runs, in order.
ci: build test clippy

build:
    cargo build --workspace --release --offline

test:
    cargo test --workspace --offline -q

# Pervasive seed-style lints are allowed wholesale; everything else is denied.
clippy:
    cargo clippy --workspace --all-targets --offline -- -D warnings \
        -A clippy::needless_range_loop \
        -A clippy::too_many_arguments \
        -A clippy::should_implement_trait

fmt:
    cargo fmt --all --check

# Regenerate every paper artifact, writing BENCH_<id>.json files to out/.
experiments:
    ICOE_BENCH_DIR=out cargo run --release --offline -p bench --bin experiments -- all

# The §4.10.1 oversubscription cliff, with UM migrations on the copy engines.
um-smoke:
    cargo run --release --offline -p bench --bin experiments -- um-oversubscription --json --timeline --bench-dir out

# The collectives sweep: flat vs hierarchical vs overlapped allreduce, with
# per-rank NIC injection tracks on the timeline.
net-smoke:
    cargo run --release --offline -p bench --bin experiments -- collective-overlap --json --timeline --bench-dir out

bench:
    cargo bench --workspace --offline
