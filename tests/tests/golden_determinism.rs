//! Golden-file conformance suite (ISSUE 4 satellite, committed-file form
//! since ISSUE 9): every registered experiment, run twice under a fresh
//! enabled recorder, must produce byte-identical structured JSON
//! documents — and those bytes must match the snapshot committed under
//! `tests/golden/<id>.json`. This pins down the whole stack — table cell
//! formatting, counter/gauge names and values, span bookkeeping — so a
//! seed change or an accidental wall-clock leak into a table shows up as
//! a first-diverging-line diff in CI rather than flaky artifact files.
//!
//! Regenerate the snapshots after an intentional output change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p xtests --test golden_determinism
//! ```
//!
//! Wall time is the one legitimately nondeterministic input, so the
//! comparison fixes `elapsed_s = 0.0`; experiments that *measure* host
//! kernels report those numbers on stderr, never in tables (see
//! `bench::exps_core::table2` and `bench::exps_apps::cardioid`).

use hetsim::obs::Recorder;
use icoe::exp::document_json;
use std::path::{Path, PathBuf};

/// One experiment's canonical document with wall time zeroed.
fn doc(id: &str) -> String {
    let mut rec = Recorder::enabled();
    let report =
        bench::run_with_recorder(id, &mut rec).unwrap_or_else(|| panic!("{id} not registered"));
    document_json(id, &report, &rec, 0.0)
}

/// The committed snapshot for one experiment id.
fn golden_path(id: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join(format!("{id}.json"))
}

/// Largest char boundary <= `i` (documents contain multi-byte glyphs).
fn floor_boundary(s: &str, mut i: usize) -> usize {
    i = i.min(s.len());
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

fn window(s: &str, at: usize) -> &str {
    let lo = floor_boundary(s, at.saturating_sub(60));
    let hi = floor_boundary(s, at + 60);
    &s[lo..hi]
}

/// Compare two documents; on mismatch, panic naming the first diverging
/// line (with a byte window into it, since documents are one long line).
fn assert_identical(id: &str, a_label: &str, a: &str, b_label: &str, b: &str) {
    if a == b {
        return;
    }
    let (mut al, mut bl) = (a.lines(), b.lines());
    let mut lineno = 0usize;
    loop {
        lineno += 1;
        let (x, y) = (al.next(), bl.next());
        if x == y {
            if x.is_none() {
                panic!("{id}: {a_label} and {b_label} differ only in trailing whitespace");
            }
            continue;
        }
        let x = x.unwrap_or("<end of document>");
        let y = y.unwrap_or("<end of document>");
        let at = x
            .bytes()
            .zip(y.bytes())
            .position(|(p, q)| p != q)
            .unwrap_or(x.len().min(y.len()));
        panic!(
            "{id}: documents diverge at line {lineno}, byte {at}\n  \
             {a_label}: ...{}...\n  {b_label}: ...{}...\n\
             (intentional change? regenerate with UPDATE_GOLDEN=1)",
            window(x, at),
            window(y, at),
        );
    }
}

/// The committed-golden contract: re-running an experiment is
/// byte-stable, and the bytes are exactly the checked-in snapshot.
/// `UPDATE_GOLDEN=1` rewrites the snapshots instead of comparing.
#[test]
fn every_experiment_document_matches_its_committed_golden_file() {
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    for id in bench::ALL {
        let a = doc(id);
        let b = doc(id);
        assert_identical(id, "run 1", &a, "run 2", &b);
        let path = golden_path(id);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir tests/golden");
            std::fs::write(&path, format!("{a}\n")).expect("write golden file");
            continue;
        }
        let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden snapshot {} for '{id}' ({e}); \
                 regenerate with UPDATE_GOLDEN=1 cargo test -p xtests --test golden_determinism",
                path.display()
            )
        });
        assert_identical(
            id,
            "committed",
            committed.trim_end_matches('\n'),
            "regenerated",
            &a,
        );
    }
}

/// No stale snapshots: every file in tests/golden/ names a registered
/// experiment (catches renamed/removed experiments leaving orphans).
#[test]
fn golden_directory_has_no_orphan_snapshots() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("golden");
    for entry in std::fs::read_dir(&dir).expect("tests/golden is committed") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy();
        let id = name
            .strip_suffix(".json")
            .unwrap_or_else(|| panic!("unexpected file in tests/golden: {name}"));
        assert!(
            bench::ALL.contains(&id),
            "tests/golden/{name} does not match any registered experiment"
        );
    }
}

/// ISSUE 5 conformance axiom: the work-stealing parallel engine is
/// observationally equivalent to the serial path. Every experiment runs
/// on its own recorder and shares no mutable state, so the per-experiment
/// documents produced by `run_all_parallel(4)` must be **byte-identical**
/// to the serial `Registry::run` documents, in the same paper order.
#[test]
fn parallel_engine_is_byte_identical_to_serial() {
    let reg = bench::registry();
    let runs = reg.run_all_parallel(4);
    assert_eq!(runs.len(), bench::ALL.len());
    for (run, &id) in runs.iter().zip(bench::ALL) {
        assert_eq!(run.id, id, "parallel emission order must be paper order");
        let out = run
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("{id} failed in parallel run: {e}"));
        let par_doc = document_json(id, &out.report, &out.recorder, 0.0);
        let ser_doc = doc(id);
        assert_eq!(
            par_doc, ser_doc,
            "{id}: parallel document differs from serial"
        );
    }
}

#[test]
fn documents_carry_tables_and_metrics_for_every_experiment() {
    for id in bench::ALL {
        let d = doc(id);
        assert!(
            d.contains("\"schema\":\"icoe-experiment-v1\""),
            "{id} document missing schema tag"
        );
        assert!(d.contains("\"tables\":["), "{id} document has no tables");
        assert!(
            d.contains("\"exp.activities\"") || d.contains("\"gauges\":{"),
            "{id} document has no metrics section"
        );
    }
}
