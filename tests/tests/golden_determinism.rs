//! Golden-determinism conformance suite (ISSUE 4 satellite): every
//! registered experiment, run twice under a fresh enabled recorder, must
//! produce byte-identical structured JSON documents. This pins down the
//! whole stack — table cell formatting, counter/gauge names and values,
//! span bookkeeping — so a seed change or an accidental wall-clock leak
//! into a table shows up as a one-line diff in CI rather than flaky
//! artifact files.
//!
//! Wall time is the one legitimately nondeterministic input, so the
//! comparison fixes `elapsed_s = 0.0`; experiments that *measure* host
//! kernels report those numbers on stderr, never in tables (see
//! `bench::exps_core::table2` and `bench::exps_apps::cardioid`).

use hetsim::obs::Recorder;
use icoe::exp::document_json;

/// One experiment's canonical document with wall time zeroed.
fn doc(id: &str) -> String {
    let mut rec = Recorder::enabled();
    let report =
        bench::run_with_recorder(id, &mut rec).unwrap_or_else(|| panic!("{id} not registered"));
    document_json(id, &report, &rec, 0.0)
}

#[test]
fn every_experiment_document_is_byte_identical_across_runs() {
    for id in bench::ALL {
        let a = doc(id);
        let b = doc(id);
        if a != b {
            // Locate the first divergence so the failure is actionable.
            let at = a
                .bytes()
                .zip(b.bytes())
                .position(|(x, y)| x != y)
                .unwrap_or(a.len().min(b.len()));
            let lo = at.saturating_sub(60);
            panic!(
                "{id}: documents diverge at byte {at}:\n run 1: ...{}\n run 2: ...{}",
                &a[lo..(at + 60).min(a.len())],
                &b[lo..(at + 60).min(b.len())]
            );
        }
    }
}

/// ISSUE 5 conformance axiom: the work-stealing parallel engine is
/// observationally equivalent to the serial path. Every experiment runs
/// on its own recorder and shares no mutable state, so the per-experiment
/// documents produced by `run_all_parallel(4)` must be **byte-identical**
/// to the serial `Registry::run` documents, in the same paper order.
#[test]
fn parallel_engine_is_byte_identical_to_serial() {
    let reg = bench::registry();
    let runs = reg.run_all_parallel(4);
    assert_eq!(runs.len(), bench::ALL.len());
    for (run, &id) in runs.iter().zip(bench::ALL) {
        assert_eq!(run.id, id, "parallel emission order must be paper order");
        let out = run
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("{id} failed in parallel run: {e}"));
        let par_doc = document_json(id, &out.report, &out.recorder, 0.0);
        let ser_doc = doc(id);
        assert_eq!(
            par_doc, ser_doc,
            "{id}: parallel document differs from serial"
        );
    }
}

#[test]
fn documents_carry_tables_and_metrics_for_every_experiment() {
    for id in bench::ALL {
        let d = doc(id);
        assert!(
            d.contains("\"schema\":\"icoe-experiment-v1\""),
            "{id} document missing schema tag"
        );
        assert!(d.contains("\"tables\":["), "{id} document has no tables");
        assert!(
            d.contains("\"exp.activities\"") || d.contains("\"gauges\":{"),
            "{id} document has no metrics section"
        );
    }
}
