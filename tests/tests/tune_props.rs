//! Property-based tests for `icoe::tune` (PR 7): strategies never
//! evaluate outside the declared dimension bounds, seeded annealing is
//! bit-identical, and the cheap strategies agree with the exhaustive
//! ground truth on the objectives they claim to solve.

use std::cell::RefCell;

use icoe::tune::{tune, Dim, Strategy, Tunable, Value};
use proptest::prelude::*;

/// A tunable over a separable strictly convex bowl around `vertex` that
/// records every point a strategy asks for, so tests can audit the
/// evaluations against the declared bounds.
struct Recorded {
    space: Vec<Dim>,
    vertex: Vec<f64>,
    seen: RefCell<Vec<Vec<Value>>>,
}

impl Recorded {
    fn new(space: Vec<Dim>, vertex: Vec<f64>) -> Recorded {
        Recorded {
            space,
            vertex,
            seen: RefCell::new(Vec::new()),
        }
    }
}

impl Tunable for Recorded {
    fn name(&self) -> &str {
        "recorded"
    }

    fn space(&self) -> Vec<Dim> {
        self.space.clone()
    }

    /// Strictly convex, hence strictly unimodal along every axis over any
    /// ordered candidate grid — the regime golden-section is exact on.
    fn objective(&self, point: &[Value]) -> f64 {
        self.seen.borrow_mut().push(point.to_vec());
        point
            .iter()
            .zip(&self.vertex)
            .map(|(p, v)| {
                let d = p.as_f64() - v;
                d * d
            })
            .sum::<f64>()
            + 1.0
    }
}

fn assert_all_in_bounds(t: &Recorded) {
    for point in t.seen.borrow().iter() {
        assert_eq!(point.len(), t.space.len());
        for (d, v) in t.space.iter().zip(point) {
            assert!(
                d.contains(v),
                "strategy evaluated {v:?} outside dim {}",
                d.name()
            );
        }
    }
}

/// Build one dimension of any flavour from raw generated numbers:
/// `flavour % 3` picks Int / Log2 / F64, the rest parameterise it.
fn make_dim(flavour: u8, a: i64, span: i64, step: i64, grid: usize) -> Dim {
    match flavour % 3 {
        0 => Dim::Int {
            name: "x",
            lo: a,
            hi: a + span,
            step,
        },
        1 => {
            let lo = a.rem_euclid(16) + 1;
            Dim::Log2 {
                name: "x",
                lo,
                hi: lo << (span % 10 + 1),
            }
        }
        _ => Dim::F64 {
            name: "x",
            lo: a as f64 / 10.0,
            hi: a as f64 / 10.0 + span as f64 / 4.0,
            grid,
        },
    }
}

proptest! {
    #[test]
    fn no_strategy_leaves_the_declared_bounds(
        flavour in 0u8..3,
        a in -50i64..50,
        span in 1i64..80,
        step in 1i64..7,
        grid in 2usize..60,
        vertex in -60.0f64..60.0,
        seed in 0u64..u64::MAX,
    ) {
        let dim = make_dim(flavour, a, span, step, grid);
        for strategy in [
            Strategy::Exhaustive,
            Strategy::GoldenSection,
            Strategy::Anneal { seed, iters: 120 },
        ] {
            let t = Recorded::new(vec![dim.clone()], vec![vertex]);
            tune(&t, strategy);
            assert_all_in_bounds(&t);
        }
    }

    #[test]
    fn anneal_same_seed_is_bit_identical(
        f1 in 0u8..3,
        f2 in 0u8..3,
        a in -50i64..50,
        span in 1i64..80,
        step in 1i64..7,
        grid in 2usize..60,
        v1 in -60.0f64..60.0,
        v2 in -60.0f64..60.0,
        seed in 0u64..u64::MAX,
    ) {
        let space = vec![
            make_dim(f1, a, span, step, grid),
            make_dim(f2, a - 7, span, step, grid),
        ];
        let vertex = vec![v1, v2];
        let s = Strategy::Anneal { seed, iters: 200 };
        let x = tune(&Recorded::new(space.clone(), vertex.clone()), s);
        let y = tune(&Recorded::new(space, vertex), s);
        prop_assert_eq!(x.best, y.best);
        prop_assert_eq!(x.cost.to_bits(), y.cost.to_bits());
        prop_assert_eq!(x.evals, y.evals);
    }

    #[test]
    fn golden_section_matches_exhaustive_on_unimodal_objectives(
        flavour in 0u8..3,
        a in -50i64..50,
        span in 1i64..80,
        step in 1i64..7,
        grid in 2usize..60,
        vertex in -60.0f64..60.0,
    ) {
        let dim = make_dim(flavour, a, span, step, grid);
        let ex = tune(&Recorded::new(vec![dim.clone()], vec![vertex]), Strategy::Exhaustive);
        let gs = tune(&Recorded::new(vec![dim], vec![vertex]), Strategy::GoldenSection);
        // Strict convexity makes the argmin cost unique up to exact f64
        // ties on symmetric grids, where both tied points cost the same
        // bits — so cost equality is exact either way.
        prop_assert_eq!(gs.cost.to_bits(), ex.cost.to_bits());
        prop_assert!(gs.evals <= ex.evals);
    }

    #[test]
    fn anneal_joint_bounds_hold_on_multi_dim_spaces(
        f1 in 0u8..3,
        f2 in 0u8..3,
        a in -50i64..50,
        span in 1i64..80,
        step in 1i64..7,
        grid in 2usize..60,
        v1 in -60.0f64..60.0,
        v2 in -60.0f64..60.0,
        seed in 0u64..u64::MAX,
    ) {
        let t = Recorded::new(
            vec![
                make_dim(f1, a, span, step, grid),
                make_dim(f2, a + 3, span, step, grid),
                Dim::Choice { name: "algo", options: &["flat", "hierarchical"] },
            ],
            vec![v1, v2, 1.0],
        );
        let r = tune(&t, Strategy::Anneal { seed, iters: 300 });
        assert_all_in_bounds(&t);
        prop_assert_eq!(r.best.len(), 3);
        prop_assert!(r.cost.is_finite());
    }
}
