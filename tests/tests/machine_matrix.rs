//! Cross-machine portability smoke (ISSUE 9 satellite): the registry must
//! run to completion on **every** machine preset — not just the five
//! MATRIX columns — with no panics and no phantom-route hits, and the
//! `sierra` baseline column must be bitwise-identical to the committed
//! golden documents (machine parameterisation is an extension, never a
//! perturbation, of the single-machine paths).
//!
//! One `run_matrix` call covers all of it: the baseline column re-executes
//! the full registry on sierra, every other column re-executes only the
//! machine-sensitive experiments (`pipeline-overlap`, `um-oversubscription`,
//! `collective-overlap`) and reuses the baseline cells for the rest — the
//! design that keeps a 16-preset sweep inside a unit-test budget.

use hetsim::machines::preset_names;
use icoe::exp::document_json;
use icoe::{Cell, ExpParams};
use std::path::Path;

#[test]
fn registry_survives_every_preset_and_sierra_matches_the_goldens() {
    let reg = bench::registry();
    let names = preset_names();
    assert_eq!(names[0], "sierra", "sierra anchors the baseline column");
    let matrix = reg.run_matrix(&names, 4, &ExpParams::default());
    assert_eq!(matrix.columns.len(), names.len());

    let sensitive = [
        "pipeline-overlap",
        "um-oversubscription",
        "collective-overlap",
    ];
    for (i, col) in matrix.columns.iter().enumerate() {
        let (ran, reused, failed) = col.tally();
        assert_eq!(failed, 0, "failing cells on {}", col.machine);
        assert_eq!(
            col.phantom_hits(),
            0.0,
            "{} costed a transfer over undeclared hardware",
            col.machine
        );
        if i == 0 {
            assert_eq!((ran, reused), (bench::ALL.len(), 0));
        } else {
            assert_eq!(ran, sensitive.len(), "{} re-ran the wrong set", col.machine);
            for cell in &col.cells {
                match cell {
                    Cell::Ran(run) => assert!(sensitive.contains(&run.id)),
                    Cell::Reused { id, baseline } => {
                        assert!(!sensitive.contains(id));
                        assert_eq!(matrix.baseline().cells[*baseline].id(), *id);
                    }
                }
            }
        }
    }

    // The sierra column IS the single-machine suite, byte for byte.
    let golden_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("golden");
    for cell in &matrix.baseline().cells {
        let Cell::Ran(run) = cell else {
            panic!("baseline reuses nothing")
        };
        let out = run.outcome.as_ref().expect("baseline cell succeeded");
        let doc = document_json(run.id, &out.report, &out.recorder, 0.0);
        let path = golden_dir.join(format!("{}.json", run.id));
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {} ({e})", path.display()));
        assert_eq!(
            doc,
            golden.trim_end_matches('\n'),
            "{}: sierra matrix cell differs from the committed golden",
            run.id
        );
    }
}
