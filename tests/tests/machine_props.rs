//! Machine-preset invariants (ISSUE 9 satellite): every preset — the
//! paper's machines and the post-Sierra portability-matrix classes — must
//! describe physically coherent hardware. The derived models (topology,
//! power, backend factors) are pure functions of the specs, so these
//! checks also pin the derivations themselves.

use hetsim::machines::{preset, PRESETS};

#[test]
fn every_preset_has_positive_specs() {
    for (name, build) in PRESETS {
        let m = build();
        let cpu = &m.node.cpu;
        assert!(cpu.sockets >= 1 && cpu.cores_per_socket >= 1, "{name}");
        assert!(cpu.gflops_per_core > 0.0, "{name}");
        assert!(cpu.mem_bw_gbs > 0.0, "{name}");
        assert!(cpu.mem_capacity_gib > 0.0, "{name}");
        assert!(
            cpu.compute_efficiency > 0.0 && cpu.compute_efficiency <= 1.0,
            "{name}"
        );
        for g in &m.node.gpus {
            assert!(
                g.fp64_gflops > 0.0 && g.fp32_gflops > 0.0,
                "{name}/{}",
                g.name
            );
            assert!(g.mem_bw_gbs > 0.0, "{name}/{}", g.name);
            assert!(g.mem_capacity_gib > 0.0, "{name}/{}", g.name);
            assert!(g.launch_overhead_us >= 0.0, "{name}/{}", g.name);
            assert!(
                g.compute_efficiency > 0.0 && g.compute_efficiency <= 1.0,
                "{name}/{}",
                g.name
            );
            assert!(
                g.texture_gain >= 1.0 && g.shared_mem_gain >= 1.0,
                "{name}/{}",
                g.name
            );
        }
        for link in [&m.node.host_gpu_link, &m.node.peer_link]
            .into_iter()
            .flatten()
        {
            assert!(link.bw_gbs > 0.0 && link.latency_us >= 0.0, "{name}");
        }
        if let Some((cap_gb, bw_gbs)) = m.node.nvme {
            assert!(cap_gb > 0.0 && bw_gbs > 0.0, "{name} nvme");
        }
        assert!(m.nodes >= 1, "{name}");
        assert!(m.network.injection_bw_gbs > 0.0, "{name}");
        assert!(m.network.latency_us > 0.0, "{name}");
    }
}

#[test]
fn every_topology_is_self_consistent() {
    for (name, build) in PRESETS {
        let m = build();
        let topo = m.topology();
        assert!(topo.ranks_per_node >= 1, "{name}");
        // One rank per GPU; CPU-only machines collapse to one per node.
        assert_eq!(topo.ranks_per_node, m.node.gpu_count().max(1), "{name}");
        // The intra-node link always exists (it falls back to host memory),
        // and a multi-rank node needs real bandwidth on it for the
        // hierarchical collectives to make sense.
        assert!(topo.intra_link.bw_gbs > 0.0, "{name}");
        if topo.ranks_per_node > 1 {
            assert!(
                m.node.peer_link.is_some() || m.node.host_gpu_link.is_some(),
                "{name}: multi-rank node with no declared intra-node link"
            );
        }
        // A whole-machine rank count is always a multiple of the node shape.
        let ranks = m.nodes * topo.ranks_per_node;
        assert_eq!(ranks % topo.ranks_per_node, 0, "{name}");
    }
}

#[test]
fn every_power_model_orders_its_states() {
    for (name, build) in PRESETS {
        let p = build().power();
        assert!(p.off_w >= 0.0, "{name}");
        assert!(p.off_w < p.idle_w, "{name}: off must draw less than idle");
        assert!(
            p.idle_w <= p.active_w,
            "{name}: idle must not exceed active"
        );
        assert!(p.gpu_active_w >= 0.0, "{name}");
    }
}

#[test]
fn every_backend_factor_is_a_penalty_never_a_speedup() {
    for (name, build) in PRESETS {
        let b = build().backend();
        assert!(b.device_factor >= 1.0, "{name}: portal cannot beat native");
        assert!(b.host_factor >= 1.0, "{name}: portal cannot beat native");
    }
    // The paper's measured calibration stays pinned on its machines.
    assert_eq!(preset("sierra").unwrap().backend().device_factor, 1.30);
    assert_eq!(preset("ea").unwrap().backend().device_factor, 1.30);
    assert_eq!(preset("sierra").unwrap().backend().host_factor, 1.05);
}
