//! Every paper artifact must regenerate without panicking and produce
//! non-empty tables — the end-to-end contract of deliverable (d).

#[test]
fn every_experiment_regenerates() {
    for id in bench::ALL {
        let tables = bench::run(id).unwrap_or_else(|| panic!("unknown id {id}"));
        assert!(!tables.is_empty(), "{id} produced no tables");
        for t in &tables {
            let rendered = t.render();
            assert!(!rendered.trim().is_empty(), "{id} rendered empty table");
            assert!(!t.rows.is_empty(), "{id}: table '{}' has no rows", t.title);
        }
    }
}

#[test]
fn unknown_experiment_is_rejected() {
    assert!(bench::run("nope").is_none());
}

#[test]
fn experiment_list_matches_design_doc_index() {
    // DESIGN.md section 3 enumerates these ids; keep the binary in sync.
    let expected = [
        "table1",
        "fig2",
        "table2",
        "fig3",
        "table3",
        "fig6",
        "fig8",
        "table4",
        "table5",
        "cretin",
        "md",
        "sw4",
        "vbl",
        "cardioid",
        "opt",
        "kavg",
        "pipeline-overlap",
        "um-oversubscription",
        "collective-overlap",
        "cluster-spike",
        "cluster-policies",
        "auto-tune",
        "lessons",
        "machines",
        "rank-throughput",
        "portability-matrix",
        "cluster-throughput",
    ];
    assert_eq!(bench::ALL, &expected);
}
