//! Integration: cross-activity couplings the paper describes — the MuMMI
//! workflow (MD + scheduler), SW4 on the portability layer, and the
//! machine model's end-to-end consistency across activities.

use hetsim::{machines, Sim, Target};

/// MuMMI (Fig 4): micro MD simulations scheduled onto the node's GPUs;
/// physics and scheduling must both hold up. (Kept on the deprecated
/// `Policy` enum on purpose — legacy-adapter coverage.)
#[test]
#[allow(deprecated)]
fn mummi_couples_md_and_scheduler() {
    use md::{Engine, LennardJones, System};
    use sched::{simulate, Job, Policy};

    // Real micro simulations.
    let mut energies = Vec::new();
    for patch in 0..6u64 {
        let sys = System::lattice(64, 0.4, 0.6, patch + 1);
        let mut e = Engine::new(sys, LennardJones::martini(), 0.002, 0.4);
        let e0 = e.total_energy();
        for _ in 0..30 {
            e.step();
        }
        let drift = (e.total_energy() - e0).abs() / e0.abs().max(1.0);
        assert!(drift < 0.05, "patch {patch} energy drift {drift}");
        energies.push(e.total_energy());
    }
    assert!(energies.iter().all(|v| v.is_finite()));

    // Their scheduling on 4 GPUs.
    let jobs: Vec<Job> = (0..24)
        .map(|id| Job {
            id,
            arrival: 0.0,
            duration: 30.0 + (id % 5) as f64 * 80.0,
            gpus: 1,
        })
        .collect();
    let m = simulate(&jobs, 4, Policy::SjfQuota { quota: 8 });
    assert_eq!(m.completed, 24);
    assert!(m.utilization > 0.9, "{}", m.utilization);
}

/// SW4 numerics must be identical no matter which portal policy runs the
/// stencil (the performance-portability contract).
#[test]
fn seismic_identical_across_policies() {
    use seismic::{ElasticOperator, WaveSolver};

    let run = || {
        let op = ElasticOperator::new(16, 16, 16, 0.1, 2.0, 1.0, 1.0);
        let dt = WaveSolver::stable_dt(&op);
        let mut s = WaveSolver::new(op, dt);
        s.sources.push(seismic::solver::PointSource {
            i: 8,
            j: 8,
            k: 8,
            component: 0,
            amplitude: 1.0,
            t0: 4.0 * dt,
            sigma: 2.0 * dt,
        });
        s.run(20);
        s.displacement().to_vec()
    };
    // The solver itself is deterministic; and charging different policies
    // to the machine model never touches the field data.
    let a = run();
    let mut sim = Sim::new(machines::sierra_node());
    let op = ElasticOperator::new(16, 16, 16, 0.1, 2.0, 1.0, 1.0);
    seismic::KernelPath::Portal.charge(&mut sim, &op);
    seismic::KernelPath::NativeShared.charge(&mut sim, &op);
    let b = run();
    assert_eq!(a, b);
}

/// The machine model is shared state across every activity: charging one
/// activity's kernels must not corrupt another's accounting.
#[test]
fn shared_machine_model_accounting_is_additive() {
    let mut sim = Sim::new(machines::sierra_node());
    let k1 = hetsim::KernelProfile::new("a").flops(1e9).bytes_read(1e8);
    let k2 = hetsim::KernelProfile::new("b").flops(2e9).bytes_read(2e8);
    let t1 = sim.launch(Target::gpu(0), &k1);
    let t2 = sim.launch(Target::gpu(0), &k2);
    assert!((sim.time(Target::gpu(0)) - (t1 + t2)).abs() < 1e-15);
    assert_eq!(sim.counters().kernels_launched, 2);
    assert!((sim.counters().flops - 3e9).abs() < 1.0);
    // Different GPU: independent stream.
    sim.launch(Target::gpu(1), &k1);
    assert!(sim.time(Target::gpu(1)) < sim.time(Target::gpu(0)));
}

/// Cardioid's DSL-lowered kernels drive the tissue model identically on
/// host threads (real execution) while the machine model prices devices.
#[test]
fn cardioid_dsl_feeds_tissue_and_cost_model() {
    use cardioid::{Monodomain, Placement};
    let mut tissue = Monodomain::new(16, 16, 0.2, 0.02, 8);
    tissue.stimulate(8, 8, 2, 60.0);
    for _ in 0..40 {
        tissue.step(true);
    }
    let activated = tissue.activated_fraction(-60.0);
    assert!(activated > 0.0);

    let mut sim = Sim::new(machines::sierra_node());
    let all_gpu = tissue.simulated_step_cost(&mut sim, Placement::AllGpu, true);
    let split = tissue.simulated_step_cost(&mut sim, Placement::SplitCpuGpu, true);
    assert!(split > all_gpu, "the data-migration lesson must hold");
}

/// LDA on dataflow matches the serial reference *and* ends with a model
/// that recovers planted topics — numerics and distribution compose.
#[test]
fn lda_distributed_equals_serial_and_recovers_topics() {
    use dataflow::StackConfig;
    use lda::{run_distributed, Corpus, CorpusParams, LdaModel};
    let corpus = Corpus::generate(CorpusParams::default(), 31);
    let machine = machines::sierra_nodes(8);
    let report = run_distributed(&corpus, &machine, StackConfig::optimized_stack(), 4, 12, 6);
    let mut serial = LdaModel::init(4, corpus.params.vocab, 0.1, 42);
    let mut bound = 0.0;
    for _ in 0..12 {
        bound = serial.em_iteration(&corpus, 6);
    }
    assert!((report.final_bound - bound).abs() < 1e-6 * bound.abs());
    assert!(report.model.topic_recovery(&corpus.true_topics) > 0.75);
}
