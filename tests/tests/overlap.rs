//! §4.9: "Performance was also improved by ... overlapping GPU
//! communication with computation." The stream machinery in `hetsim` must
//! express that optimisation.

use hetsim::{machines, KernelProfile, Loc, Sim, StreamId, Target, TransferKind};

fn interior_kernel() -> KernelProfile {
    KernelProfile::new("sw4-interior")
        .flops(5e9)
        .bytes_read(2e9)
        .parallelism(1e7)
}

const HALO_BYTES: f64 = 64.0 * 1024.0 * 1024.0;

/// Sequential schedule: halo in, then compute, on the default stream.
fn sequential() -> f64 {
    let mut sim = Sim::new(machines::sierra_node());
    sim.transfer(Loc::Host, Loc::Gpu(0), HALO_BYTES, TransferKind::Memcpy);
    sim.launch(Target::gpu(0), &interior_kernel());
    sim.elapsed()
}

/// Overlapped schedule: interior compute on a secondary stream while the
/// halo crosses the link; the (small) boundary kernel then waits for both.
fn overlapped() -> f64 {
    let mut sim = Sim::new(machines::sierra_node());
    let compute_stream = StreamId {
        target: Target::gpu(0),
        index: 1,
    };
    sim.launch_on(compute_stream, &interior_kernel());
    sim.transfer(Loc::Host, Loc::Gpu(0), HALO_BYTES, TransferKind::Memcpy);
    // Boundary kernel depends on both the halo and the interior sweep.
    let default = StreamId::default_for(Target::gpu(0));
    sim.wait(default, compute_stream);
    let boundary = KernelProfile::new("sw4-boundary")
        .flops(5e7)
        .bytes_read(HALO_BYTES);
    sim.launch(Target::gpu(0), &boundary);
    sim.elapsed()
}

#[test]
fn overlap_hides_the_halo_exchange() {
    let seq = sequential();
    let ovl = overlapped();
    // The overlapped schedule does strictly more work (it also runs the
    // boundary kernel) yet finishes sooner than transfer + compute run
    // back-to-back.
    assert!(ovl < seq, "overlap {ovl} >= sequential {seq}");
}

#[test]
fn overlap_gain_is_bounded_by_the_shorter_phase() {
    let sim = Sim::new(machines::sierra_node());
    let t_k = sim.cost(Target::gpu(0), &interior_kernel());
    let t_x = sim.transfer_cost(Loc::Host, Loc::Gpu(0), HALO_BYTES, TransferKind::Memcpy);
    let seq = sequential();
    let ovl = overlapped();
    let saved = seq - ovl;
    // You can never hide more than min(compute, transfer).
    assert!(
        saved <= t_k.min(t_x) + 1e-9,
        "saved {saved} > min phase {}",
        t_k.min(t_x)
    );
    assert!(
        saved > 0.25 * t_k.min(t_x),
        "overlap too weak: saved {saved}"
    );
}
