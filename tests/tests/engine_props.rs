//! Property-based invariants for the copy-engine / event model in
//! `hetsim::Sim`: clocks only move forward, async + wait never beats the
//! serial schedule it decomposes, and `sync_all` joins the engine tracks.

use hetsim::{machines, Engine, KernelProfile, Loc, Sim, StreamId, Target, TransferKind};
use proptest::prelude::*;

/// The streams and engines a random program may touch (2 GPUs x 3 streams
/// plus the host, and every engine on the route table).
fn probes() -> (Vec<StreamId>, Vec<Engine>) {
    let mut streams = Vec::new();
    for g in 0..2 {
        for index in 0..3 {
            streams.push(StreamId {
                target: Target::gpu(g),
                index,
            });
        }
    }
    streams.push(StreamId::default_for(Target::cpu_all()));
    let engines = vec![
        Engine::H2d(0),
        Engine::D2h(0),
        Engine::H2d(1),
        Engine::D2h(1),
        Engine::HostDma,
    ];
    (streams, engines)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every clock in the machine — stream clocks, engine clocks and the
    /// global `elapsed()` — is monotone under arbitrary interleavings of
    /// launches, sync/async transfers, event waits and syncs.
    #[test]
    fn clocks_are_monotone_under_random_programs(
        ops in prop::collection::vec(
            (0u8..7, 0usize..2, 1u64..(1 << 24), 0usize..3),
            1..40,
        ),
    ) {
        let (streams, engines) = probes();
        let mut s = Sim::new(machines::sierra_node());
        let mut last_elapsed = 0.0f64;
        let mut last_streams = vec![0.0f64; streams.len()];
        let mut last_engines = vec![0.0f64; engines.len()];
        for (op, g, bytes, qi) in ops {
            let b = bytes as f64;
            let q = StreamId { target: Target::gpu(g), index: qi };
            match op {
                0 => {
                    let k = KernelProfile::new("k").flops(b).bytes_read(b / 2.0);
                    s.launch(Target::gpu(g), &k);
                }
                1 => {
                    s.transfer(Loc::Host, Loc::Gpu(g), b, TransferKind::Memcpy);
                }
                2 => {
                    s.transfer(Loc::Gpu(g), Loc::Host, b, TransferKind::Memcpy);
                }
                3 => {
                    s.transfer_async(Loc::Host, Loc::Gpu(g), b, TransferKind::Memcpy, q);
                }
                4 => {
                    s.transfer_async(Loc::Gpu(g), Loc::Host, b, TransferKind::Memcpy, q);
                }
                5 => {
                    let ev = s.record(q);
                    s.wait_event(StreamId::default_for(Target::gpu(1 - g)), ev);
                }
                _ => {
                    s.sync_all();
                }
            }
            let e = s.elapsed();
            prop_assert!(e >= last_elapsed, "elapsed went backwards: {e} < {last_elapsed}");
            last_elapsed = e;
            for (i, &sid) in streams.iter().enumerate() {
                let t = s.stream_time(sid);
                prop_assert!(t >= last_streams[i], "stream {sid:?} went backwards");
                last_streams[i] = t;
            }
            for (i, &eng) in engines.iter().enumerate() {
                let t = s.engine_time(eng);
                prop_assert!(t >= last_engines[i], "engine {eng:?} went backwards");
                last_engines[i] = t;
            }
        }
    }

    /// Issuing a transfer sequence asynchronously on a single stream and
    /// waiting is exactly the serial schedule: `transfer_async` + `sync_all`
    /// can never finish *earlier* than the blocking `transfer` equivalent
    /// (and on one stream it cannot finish later either).
    #[test]
    fn single_stream_async_plus_wait_equals_serial(
        xfers in prop::collection::vec((0u8..2, 1u64..(1 << 26)), 1..20),
    ) {
        let mut serial = Sim::new(machines::sierra_node());
        for &(h2d, b) in &xfers {
            let (src, dst) = if h2d == 1 { (Loc::Host, Loc::Gpu(0)) } else { (Loc::Gpu(0), Loc::Host) };
            serial.transfer(src, dst, b as f64, TransferKind::Memcpy);
        }
        let t_serial = serial.elapsed();

        let mut a = Sim::new(machines::sierra_node());
        let q = StreamId::default_for(Target::gpu(0));
        let mut last = hetsim::Event::at(0.0);
        for &(h2d, b) in &xfers {
            let (src, dst) = if h2d == 1 { (Loc::Host, Loc::Gpu(0)) } else { (Loc::Gpu(0), Loc::Host) };
            last = a.transfer_async(src, dst, b as f64, TransferKind::Memcpy, q);
        }
        let t_async = a.sync_all();
        let tol = 1e-9 * t_serial.max(1e-9);
        prop_assert!(t_async >= t_serial - tol, "async {t_async} beat serial {t_serial}");
        prop_assert!((t_async - t_serial).abs() <= tol, "one stream must degenerate to serial");
        prop_assert!((last.time - t_async).abs() <= tol, "last event is the wait point");
    }

    /// Copies sharing one DMA engine are FIFO: completion events come back
    /// in issue order no matter which stream each copy was queued on.
    #[test]
    fn same_engine_copies_complete_in_issue_order(
        copies in prop::collection::vec((1u64..(1 << 24), 0usize..3), 2..12),
    ) {
        let mut s = Sim::new(machines::sierra_node());
        let mut prev = 0.0f64;
        for (b, qi) in copies {
            let q = StreamId { target: Target::gpu(0), index: qi };
            let ev = s.transfer_async(Loc::Host, Loc::Gpu(0), b as f64, TransferKind::Memcpy, q);
            prop_assert!(ev.time >= prev, "H2D engine reordered: {} < {prev}", ev.time);
            prev = ev.time;
        }
    }

    /// `sync_all` joins copy-engine tracks too: it covers every async
    /// completion event, is idempotent, and a blocking transfer issued
    /// afterwards starts from the joined clock rather than sneaking in
    /// behind a busy engine.
    #[test]
    fn sync_all_joins_engines_and_covers_all_events(
        copies in prop::collection::vec(
            (0u8..2, 0usize..2, 1u64..(1 << 24), 0usize..3),
            1..25,
        ),
    ) {
        let mut s = Sim::new(machines::sierra_node());
        // Touch the Host/Gpu(0) default streams so they exist and take
        // part in the join (clocks in this model are created lazily at 0;
        // a track that never ran anything is not pinned by a sync).
        s.transfer(Loc::Host, Loc::Gpu(0), 1.0, TransferKind::Memcpy);
        let mut events = Vec::new();
        for &(h2d, g, b, qi) in &copies {
            let (src, dst) = if h2d == 1 { (Loc::Host, Loc::Gpu(g)) } else { (Loc::Gpu(g), Loc::Host) };
            let q = StreamId { target: Target::gpu(g), index: qi };
            events.push(s.transfer_async(src, dst, b as f64, TransferKind::Memcpy, q));
        }
        let t = s.sync_all();
        let tol = 1e-9 * t.max(1e-9);
        for ev in &events {
            prop_assert!(ev.time <= t + tol, "event {} after sync point {t}", ev.time);
        }
        prop_assert!((s.sync_all() - t).abs() <= tol, "sync_all must be idempotent");
        let dt = s.transfer(Loc::Host, Loc::Gpu(0), 4096.0, TransferKind::Memcpy);
        prop_assert!(
            s.elapsed() >= t + dt - tol,
            "post-sync transfer started before the joined clock"
        );
    }
}
