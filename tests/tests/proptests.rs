//! Property-based tests on core data structures and invariants, across
//! crates.

// The scheduler property below deliberately keeps driving the deprecated
// `Policy` enum: it doubles as coverage for the legacy adapter over the
// `SchedPolicy` trait (see `sched_policy_props.rs` for the trait suite).
#![allow(deprecated)]

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR built from arbitrary triplets: SpMV matches a dense reference.
    #[test]
    fn csr_spmv_matches_dense(
        triplets in prop::collection::vec((0usize..8, 0usize..8, -10.0f64..10.0), 0..40),
        x in prop::collection::vec(-5.0f64..5.0, 8),
    ) {
        let a = linalg::CsrMatrix::from_triplets(8, 8, &triplets);
        let mut dense = vec![0.0f64; 64];
        for &(r, c, v) in &triplets {
            dense[r * 8 + c] += v;
        }
        let mut y_sparse = vec![0.0; 8];
        a.spmv(&x, &mut y_sparse);
        for r in 0..8 {
            let want: f64 = (0..8).map(|c| dense[r * 8 + c] * x[c]).sum();
            prop_assert!((y_sparse[r] - want).abs() < 1e-9);
        }
    }

    /// Transpose is an involution on arbitrary CSR matrices.
    #[test]
    fn csr_transpose_involution(
        triplets in prop::collection::vec((0usize..6, 0usize..9, -3.0f64..3.0), 0..30),
    ) {
        let a = linalg::CsrMatrix::from_triplets(6, 9, &triplets);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    /// FFT roundtrip is identity for arbitrary power-of-two signals.
    #[test]
    fn fft_roundtrip(
        re in prop::collection::vec(-100.0f64..100.0, 64),
        im in prop::collection::vec(-100.0f64..100.0, 64),
    ) {
        use beamline::cplx::C64;
        let input: Vec<C64> = re.iter().zip(&im).map(|(&a, &b)| C64::new(a, b)).collect();
        let mut data = input.clone();
        beamline::fft::fft_inplace(&mut data, false);
        beamline::fft::fft_inplace(&mut data, true);
        for (a, b) in data.iter().zip(&input) {
            prop_assert!((*a - *b).abs() < 1e-8);
        }
    }

    /// Tiled transpose equals naive for arbitrary sizes and tiles.
    #[test]
    fn transpose_tiled_equals_naive(n in 1usize..40, tile in 1usize..64) {
        use beamline::cplx::C64;
        let src: Vec<C64> = (0..n * n).map(|i| C64::new(i as f64, -(i as f64))).collect();
        let mut a = vec![C64::ZERO; n * n];
        let mut b = vec![C64::ZERO; n * n];
        beamline::transpose::transpose_naive(&src, &mut a, n);
        beamline::transpose::transpose_tiled(&src, &mut b, n, tile);
        prop_assert_eq!(a, b);
    }

    /// BFS trees validate on arbitrary graphs, from any reachable root.
    #[test]
    fn bfs_always_produces_valid_trees(
        edges in prop::collection::vec((0usize..30, 0usize..30), 1..120),
        seed in 0u64..1000,
    ) {
        let edges: Vec<(usize, usize)> =
            edges.into_iter().filter(|(u, v)| u != v).collect();
        prop_assume!(!edges.is_empty());
        let g = graphx::CsrGraph::from_edges(30, &edges);
        let root = g.non_isolated_vertex(seed);
        let td = graphx::bfs_top_down(&g, root);
        let dopt = graphx::bfs_direction_optimising(&g, root);
        prop_assert!(graphx::validate_tree(&g, root, &td));
        prop_assert!(graphx::validate_tree(&g, root, &dopt));
        prop_assert_eq!(td.reached, dopt.reached);
    }

    /// Rational fits of smooth sigmoids stay within tolerance anywhere in
    /// the fitted interval, for arbitrary interval placements.
    #[test]
    fn rational_fit_bounded_error(centre in -40.0f64..10.0, width in 20.0f64..80.0) {
        let f = move |v: f64| 1.0 / (1.0 + ((v - centre) / 7.0).exp());
        let r = cardioid::RationalApprox::fit(f, centre - width, centre + width, 8, 8, 320);
        let mut worst = 0.0f64;
        for i in 0..200 {
            let x = centre - width + 2.0 * width * i as f64 / 199.0;
            worst = worst.max((r.eval(x) - f(x)).abs());
        }
        prop_assert!(worst < 0.02, "worst abs err {}", worst);
    }

    /// The DES scheduler conserves jobs and respects capacity under any
    /// workload.
    #[test]
    fn scheduler_conserves_jobs(
        durations in prop::collection::vec(1.0f64..100.0, 1..60),
        seed in 0u64..50,
    ) {
        use sched::{simulate, Job, Policy};
        let gpus = 4usize;
        let jobs: Vec<Job> = durations
            .iter()
            .enumerate()
            .map(|(id, &d)| Job {
                id,
                arrival: (id as f64) * (seed as f64 % 7.0),
                duration: d,
                gpus: 1 + id % gpus,
            })
            .collect();
        for policy in [Policy::Fcfs, Policy::Sjf, Policy::SjfQuota { quota: 4 }] {
            let m = simulate(&jobs, gpus, policy);
            prop_assert_eq!(m.completed, jobs.len());
            prop_assert!(m.utilization <= 1.0 + 1e-9);
            let work: f64 = jobs.iter().map(|j| j.duration * j.gpus as f64).sum();
            prop_assert!(m.makespan + 1e-9 >= work / gpus as f64);
        }
    }

    /// Pair forces always obey Newton's third law (zero net force), for
    /// arbitrary particle placements.
    #[test]
    fn md_forces_sum_to_zero(
        coords in prop::collection::vec(0.5f64..9.5, 3..30),
    ) {
        let mut sys = md::System::empty(10.0);
        for c in coords.chunks_exact(3) {
            sys.push([c[0], c[1], c[2]], [0.0; 3], 1.0);
        }
        prop_assume!(sys.len() >= 2);
        let lj = md::LennardJones::martini();
        md::potential::compute_pair_forces_bruteforce(&mut sys, &lj);
        let fx: f64 = sys.fx.iter().sum();
        let fy: f64 = sys.fy.iter().sum();
        let fz: f64 = sys.fz.iter().sum();
        let scale = sys.fx.iter().map(|v| v.abs()).fold(1.0, f64::max);
        prop_assert!(fx.abs() < 1e-9 * scale && fy.abs() < 1e-9 * scale && fz.abs() < 1e-9 * scale);
    }

    /// Kernel cost is monotone in work: more flops or bytes never makes a
    /// kernel faster on any preset device.
    #[test]
    fn kernel_cost_is_monotone(
        flops in 0.0f64..1e12,
        bytes in 0.0f64..1e10,
        extra in 1.0f64..4.0,
    ) {
        use hetsim::{machines, KernelProfile};
        let gpu = &machines::sierra_node().node.gpus[0];
        let cpu = &machines::sierra_node().node.cpu;
        let base = KernelProfile::new("k").flops(flops).bytes_read(bytes);
        let more = KernelProfile::new("k").flops(flops * extra).bytes_read(bytes * extra);
        prop_assert!(more.time_on_gpu(gpu) >= base.time_on_gpu(gpu));
        prop_assert!(more.time_on_cpu(cpu, 16) >= base.time_on_cpu(cpu, 16));
    }

    /// AMR restrict(prolong(x)) == x for arbitrary coarse fields.
    #[test]
    fn amr_transfer_roundtrip(vals in prop::collection::vec(-10.0f64..10.0, 16)) {
        use amr::grid::{prolong_constant, restrict_average, BoxRegion, Patch};
        let cbox = BoxRegion::new((0, 0), (4, 4));
        let mut coarse = Patch::new(cbox, 0, 1);
        for (k, &v) in vals.iter().enumerate() {
            coarse.set(0, k / 4, k % 4, v);
        }
        let mut fine = Patch::new(cbox.refined(2), 0, 1);
        prolong_constant(&coarse, &mut fine, 2);
        let mut back = Patch::new(cbox, 0, 1);
        restrict_average(&fine, &mut back, 2);
        for k in 0..16 {
            prop_assert!((back.get(0, k / 4, k % 4) - vals[k]).abs() < 1e-12);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel exclusive scan matches the serial definition for any input
    /// and thread count.
    #[test]
    fn scan_matches_definition(
        input in prop::collection::vec(-50.0f64..50.0, 0..5000),
        threads in 1usize..12,
    ) {
        let mut out = vec![0.0; input.len()];
        let total = portal::exclusive_scan(&input, &mut out, threads);
        let mut acc = 0.0;
        for (i, &v) in input.iter().enumerate() {
            prop_assert!((out[i] - acc).abs() < 1e-9, "index {}", i);
            acc += v;
        }
        prop_assert!((total - acc).abs() < 1e-9);
    }

    /// Connected components: every edge connects equal labels, and labels
    /// are component minima.
    #[test]
    fn cc_labels_are_consistent(
        edges in prop::collection::vec((0usize..25, 0usize..25), 0..80),
    ) {
        let edges: Vec<(usize, usize)> = edges.into_iter().filter(|(u, v)| u != v).collect();
        let g = graphx::CsrGraph::from_edges(25, &edges);
        let (labels, _) = graphx::connected_components(&g);
        for u in 0..g.n {
            for &v in g.neighbors(u) {
                prop_assert_eq!(labels[u], labels[v], "edge ({}, {})", u, v);
            }
            prop_assert!(labels[u] <= u, "label must be a component minimum");
        }
    }

    /// The DSL tape always agrees with tree evaluation on random
    /// single-variable expressions built from the full op set.
    #[test]
    fn dsl_tape_matches_tree(ops in prop::collection::vec(0u8..5, 1..12), v in -3.0f64..3.0) {
        use cardioid::Expr;
        // Build a nested expression deterministically from the op list.
        let mut e = Expr::var("v");
        for op in ops {
            e = match op {
                0 => Expr::Add(Box::new(e), Box::new(Expr::c(0.5))),
                1 => Expr::Mul(Box::new(e), Box::new(Expr::c(0.7))),
                2 => Expr::Tanh(Box::new(e)),
                3 => Expr::Neg(Box::new(e)),
                _ => Expr::Sub(Box::new(e), Box::new(Expr::var("v"))),
            };
        }
        let k = cardioid::Kernel::compile(&e, &["v"]);
        let tree = e.eval(&std::collections::HashMap::from([("v", v)]));
        prop_assert!((k.run(&[v]) - tree).abs() < 1e-12);
    }

    /// MD parallel (GPU-style) forces equal the serial Newton's-third-law
    /// path for arbitrary particle clouds.
    #[test]
    fn md_parallel_equals_serial(
        coords in prop::collection::vec(0.5f64..9.5, 6..45),
        threads in 1usize..8,
    ) {
        let build = || {
            let mut sys = md::System::empty(10.0);
            for c in coords.chunks_exact(3) {
                sys.push([c[0], c[1], c[2]], [0.0; 3], 1.0);
            }
            sys
        };
        let mut a = build();
        let mut b = build();
        prop_assume!(a.len() >= 2);
        let lj = md::LennardJones::martini();
        let nlist = md::NeighborList::build(&a, lj.cutoff, 0.4);
        let (e1, _) = md::potential::compute_pair_forces(&mut a, &nlist, &lj);
        let (e2, _) = md::potential::compute_pair_forces_parallel(&mut b, &nlist, &lj, threads);
        prop_assert!((e1 - e2).abs() < 1e-9 * e1.abs().max(1.0));
        for i in 0..a.len() {
            prop_assert!((a.fx[i] - b.fx[i]).abs() < 1e-9 * a.fx[i].abs().max(1.0));
        }
    }
}
