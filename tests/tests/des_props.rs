//! Property-based tests for the unified `hetsim::des` event kernel
//! (ISSUE 8): the calendar queue is a faithful priority queue under any
//! interleaving, simultaneous events keep insertion order, and the
//! kernel-backed `sched::des::simulate` is *bitwise* identical to the
//! pre-kernel scan loop it replaced.

use hetsim::des::{EventKey, EventQueue};
use proptest::prelude::*;
use sched::policy::{ClusterView, JobInfo, QueuedJob, RunningJob, SchedPolicy};
use sched::{simulate, EasyBackfill, Fcfs, GpuBinPack, Job, Metrics, Sjf, SjfQuota, SlaUrgency};

/// One queue operation for the interleaving property, decoded from a
/// plain `(selector, time-knob)` tuple (the proptest shim has no
/// `prop_oneof`): selectors 0–5 push a clustered finite time — a small
/// value set, so collisions exercise the same-epoch and same-time
/// paths — 6 pushes NaN, and 7–9 pop.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push(f64),
    Pop,
}

fn decode_op(sel: u8, knob: i32) -> Op {
    match sel {
        0..=5 => Op::Push(knob as f64 * 0.125),
        6 => Op::Push(f64::NAN),
        _ => Op::Pop,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under arbitrary interleaved push/pop, every pop returns the
    /// globally minimal `(time, seq)` key among the pending events —
    /// checked against a plain sorted-Vec reference model.
    #[test]
    fn pops_are_globally_time_seq_ordered_under_interleaving(
        raw_ops in prop::collection::vec((0u8..10, -16i32..160), 1..400),
    ) {
        let mut q: EventQueue<u32> = EventQueue::new();
        // Reference model: the pending (key, payload) set, kept naively.
        let mut model: Vec<(EventKey, u32)> = Vec::new();
        let mut payload = 0u32;
        for (sel, knob) in raw_ops {
            match decode_op(sel, knob) {
                Op::Push(t) => {
                    let key = q.push(t, payload);
                    // The queue normalises NaN to positive NaN; mirror it.
                    prop_assert!(key.time.total_cmp(&key.time).is_eq());
                    model.push((key, payload));
                    payload += 1;
                }
                Op::Pop => {
                    let got = q.pop();
                    if model.is_empty() {
                        prop_assert!(got.is_none());
                    } else {
                        let (key, ev) = got.expect("model says nonempty");
                        let best = model
                            .iter()
                            .enumerate()
                            .min_by(|a, b| a.1.0.cmp(&b.1.0))
                            .map(|(i, _)| i)
                            .expect("nonempty");
                        let (want_key, want_ev) = model.remove(best);
                        prop_assert_eq!(key, want_key);
                        prop_assert_eq!(ev, want_ev);
                    }
                }
            }
            prop_assert_eq!(q.len(), model.len());
        }
        // Drain: the remainder comes out fully sorted.
        let mut last: Option<EventKey> = None;
        while let Some((key, _)) = q.pop() {
            if let Some(prev) = last {
                prop_assert!(prev < key, "{prev:?} !< {key:?}");
            }
            last = Some(key);
        }
        prop_assert!(q.is_empty());
    }

    /// Simultaneous events pop in insertion order, including batches big
    /// enough to trigger the sorted-head-bucket fast path (> 64 events
    /// at one instant).
    #[test]
    fn same_time_events_preserve_insertion_order(
        sizes in prop::collection::vec(1usize..90, 1..6),
        t0 in -3.0f64..3.0,
    ) {
        let mut q: EventQueue<(usize, usize)> = EventQueue::new();
        for (batch, &n) in sizes.iter().enumerate() {
            let t = t0 + batch as f64; // one instant per batch
            for i in 0..n {
                q.push(t, (batch, i));
            }
        }
        for (batch, &n) in sizes.iter().enumerate() {
            for i in 0..n {
                let (key, ev) = q.pop().expect("all batches pending");
                prop_assert_eq!(ev, (batch, i));
                prop_assert!((key.time - (t0 + batch as f64)).abs() < 1e-12);
            }
        }
        prop_assert!(q.is_empty());
    }
}

// ---------------------------------------------------------------- conformance

/// The pre-ISSUE-8 `sched::des::simulate` scan loop, copied verbatim
/// (next-event time from an O(n) min-fold over `running` plus an arrival
/// cursor, no event queue). The kernel-backed port must match it bitwise.
fn reference_simulate(jobs: &[Job], gpus: usize, policy: impl SchedPolicy) -> Metrics {
    assert!(gpus >= 1);
    assert!(
        jobs.iter().all(|j| j.gpus <= gpus),
        "job larger than the pool"
    );
    let mut arrivals: Vec<Job> = jobs.to_vec();
    arrivals.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
    let mut queue: Vec<QueuedJob> = Vec::new();
    let mut running: Vec<RunningJob> = Vec::new();
    let mut free = gpus;
    let mut t = 0.0f64;
    let mut next_arrival = 0usize;
    let mut waits: Vec<f64> = Vec::new();
    let mut busy_gpu_seconds = 0.0;
    let n = arrivals.len();

    while waits.len() < n {
        loop {
            let view = ClusterView {
                now: t,
                queue: &queue,
                running: &running,
                free_gpus: free,
                total_gpus: gpus,
                nodes: &[],
            };
            let Some(d) = policy.select(&view) else { break };
            policy.on_select(&mut queue, d.queue_idx);
            let q = queue.remove(d.queue_idx);
            free -= q.job.gpus;
            running.push(RunningJob {
                finish: t + q.job.duration,
                gpus: q.job.gpus,
                cores: q.job.cores,
            });
            busy_gpu_seconds += q.job.duration * q.job.gpus as f64;
            waits.push(t - q.job.arrival);
        }
        let t_arr = arrivals.get(next_arrival).map(|j| j.arrival);
        let t_done = running
            .iter()
            .map(|r| r.finish)
            .fold(f64::INFINITY, f64::min);
        let t_next = match t_arr {
            Some(a) => a.min(t_done),
            None => t_done,
        };
        if !t_next.is_finite() {
            break;
        }
        t = t_next;
        running.retain(|r| {
            if r.finish <= t + 1e-12 {
                free += r.gpus;
                false
            } else {
                true
            }
        });
        while next_arrival < arrivals.len() && arrivals[next_arrival].arrival <= t + 1e-12 {
            queue.push(QueuedJob {
                job: JobInfo::from_job(&arrivals[next_arrival]),
                bypassed: 0,
            });
            next_arrival += 1;
        }
    }

    let makespan = t.max(running.iter().map(|r| r.finish).fold(t, f64::max));
    let mean_wait = waits.iter().sum::<f64>() / waits.len().max(1) as f64;
    let max_wait = waits.iter().copied().fold(0.0, f64::max);
    Metrics {
        makespan,
        mean_wait,
        max_wait,
        utilization: busy_gpu_seconds / (gpus as f64 * makespan.max(1e-12)),
        completed: waits.len(),
    }
}

fn jobs_from(durations: &[f64], gaps: &[f64], widths: &[usize], gpus: usize) -> Vec<Job> {
    let mut t = 0.0;
    durations
        .iter()
        .zip(gaps)
        .zip(widths)
        .enumerate()
        .map(|(id, ((&d, &gap), &w))| {
            t += gap;
            Job {
                id,
                arrival: t,
                duration: d,
                gpus: 1 + w % gpus,
            }
        })
        .collect()
}

fn assert_bitwise_eq(a: Metrics, b: Metrics, ctx: &str) {
    assert_eq!(a.completed, b.completed, "{ctx}: completed");
    for (name, x, y) in [
        ("makespan", a.makespan, b.makespan),
        ("mean_wait", a.mean_wait, b.mean_wait),
        ("max_wait", a.max_wait, b.max_wait),
        ("utilization", a.utilization, b.utilization),
    ] {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{ctx}: {name} {x} != {y} (bitwise)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The kernel-backed simulator reproduces the old scan loop bitwise
    /// for every built-in policy on random workloads (including
    /// simultaneous arrivals via zero gaps).
    #[test]
    fn kernel_backed_simulate_matches_the_scan_loop_bitwise(
        durations in prop::collection::vec(0.25f64..60.0, 1..40),
        gaps in prop::collection::vec(0.0f64..8.0, 40),
        widths in prop::collection::vec(0usize..8, 40),
    ) {
        let gpus = 8;
        let jobs = jobs_from(&durations, &gaps, &widths, gpus);
        let policies: Vec<Box<dyn SchedPolicy>> = vec![
            Box::new(Fcfs),
            Box::new(Sjf),
            Box::new(SjfQuota { quota: 4 }),
            Box::new(EasyBackfill),
            Box::new(GpuBinPack),
            Box::new(SlaUrgency),
        ];
        for p in policies {
            let name = p.name().to_string();
            let got = simulate(&jobs, gpus, p.as_ref());
            let want = reference_simulate(&jobs, gpus, p.as_ref());
            assert_bitwise_eq(got, want, &name);
        }
    }
}
