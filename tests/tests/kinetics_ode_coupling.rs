//! Integration: time-dependent atomic kinetics driven by the SUNDIALS-like
//! integrator — the coupling Cretin has inside HYDRA (the multiphysics
//! host steps the rate equations implicitly).

use kinetics::rates::ZoneConditions;
use kinetics::{solve_populations_direct, AtomicModel, RateMatrix};
use ode::{AdaptiveBdf, BdfIntegrator, BdfOptions, HostVec, NVector};

fn setup() -> (AtomicModel, RateMatrix) {
    let model = AtomicModel::synthetic(30, 7);
    let cond = ZoneConditions {
        te: 0.8,
        ne: 5.0,
        radiation: 1.0,
    };
    let rm = RateMatrix::assemble(&model, cond, true);
    (model, rm)
}

/// dn/dt = A n relaxes to the steady state the direct solver finds.
#[test]
fn transient_kinetics_relaxes_to_steady_state() {
    let (model, rm) = setup();
    let n = model.n_states();
    // Start far from equilibrium: everything in the ground state.
    let mut y0 = vec![0.0; n];
    y0[0] = 1.0;
    let mut bdf = BdfIntegrator::new(HostVec::from_vec(y0), 0.0, BdfOptions::default());
    let a = rm.a.clone();
    let ok = bdf.integrate_to(
        20.0,
        0.05,
        |_t, y, dy| a.matvec(y, dy),
        |r: &HostVec, z: &mut HostVec| z.copy_from(r),
    );
    assert!(ok);
    let steady = solve_populations_direct(&rm);
    let yf = bdf.state().as_slice();
    // Conservation: total population stays 1 (columns of A sum to zero).
    let total: f64 = yf.iter().sum();
    assert!((total - 1.0).abs() < 1e-6, "population leaked: {total}");
    let max_dev = yf
        .iter()
        .zip(&steady)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(max_dev < 1e-3, "not converged to steady state: {max_dev}");
}

/// The adaptive controller handles the stiff early transient with small
/// steps and coasts afterwards.
#[test]
fn adaptive_integrator_coasts_after_the_kinetic_transient() {
    let (model, rm) = setup();
    let n = model.n_states();
    let mut y0 = vec![0.0; n];
    y0[0] = 1.0;
    let mut a = AdaptiveBdf::new(
        HostVec::from_vec(y0),
        0.0,
        1e-3,
        1e-9,
        1e-5,
        BdfOptions::default(),
    );
    let m = rm.a.clone();
    let ok = a.integrate_to(
        10.0,
        |_t, y, dy| m.matvec(y, dy),
        |r: &HostVec, z: &mut HostVec| z.copy_from(r),
    );
    assert!(ok);
    assert!(
        a.stats.h_max_used > 50.0 * a.stats.h_min_used,
        "no step-size dynamic range: [{}, {}]",
        a.stats.h_min_used,
        a.stats.h_max_used
    );
    // Populations stay physical throughout the run's endpoint.
    for (i, &p) in a.state().as_slice().iter().enumerate() {
        assert!(p > -1e-6, "negative population at state {i}: {p}");
    }
}
