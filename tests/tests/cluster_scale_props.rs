//! Conformance properties for the ISSUE-10 incremental cluster simulator:
//! the indexed, delta-maintained serving loop ([`icoe::cluster::sim`])
//! must be **bitwise indistinguishable** from the retained naive
//! reference loop ([`icoe::cluster::reference`]) — same metrics to the
//! last mantissa bit — across every built-in policy, stream shape, and
//! park-governor setting. Float identity is deliberate: both loops must
//! execute the *same float operations in the same order* (placement
//! scans, energy integration, wait quantiles), so any drift means the
//! incremental state diverged from the world it summarizes.
//!
//! The sims run under `debug_assertions` here, which also arms the
//! in-loop sampled recount (`ClusterSim::aggregates_consistent`) — the
//! invariant that the cached free-capacity aggregates always match a
//! from-scratch per-node recount fires *during* these runs, not only at
//! the post-run check below.

use proptest::prelude::*;
use proptest::TestCaseError;

use icoe::cluster::{
    job_stream, simulate_cluster_reference, ClusterConfig, ClusterJob, ClusterMetrics, ClusterSim,
    StreamConfig,
};
use icoe::hetsim::Recorder;
use sched::{EasyBackfill, Fcfs, GpuBinPack, SchedPolicy, Sjf, SjfQuota, SlaUrgency};

fn builtins() -> Vec<Box<dyn SchedPolicy>> {
    vec![
        Box::new(Fcfs),
        Box::new(Sjf),
        Box::new(SjfQuota { quota: 8 }),
        Box::new(EasyBackfill),
        Box::new(GpuBinPack),
        Box::new(SlaUrgency),
    ]
}

/// The three stream shapes the cluster experiments draw from: steady
/// Poisson traffic, the morning-spike scenario, and a sparse overnight
/// trickle (long idle gaps, so the park governor actually parks).
fn streams(jobs: usize, mult: f64, seed: u64) -> Vec<(&'static str, Vec<ClusterJob>)> {
    let sparse = {
        let mut cfg = StreamConfig::baseline(jobs, seed);
        cfg.base_rate = 0.01;
        cfg
    };
    vec![
        ("baseline", job_stream(&StreamConfig::baseline(jobs, seed))),
        ("spiky", job_stream(&StreamConfig::spiky(jobs, mult, seed))),
        ("sparse", job_stream(&sparse)),
    ]
}

/// Bitwise equality on every metric field (stricter than `PartialEq`:
/// `-0.0 != 0.0`, and a NaN leak would be caught, not equated).
fn assert_bitwise(a: &ClusterMetrics, b: &ClusterMetrics, ctx: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.completed, b.completed, "completed: {}", ctx);
    prop_assert_eq!(a.sla_tracked, b.sla_tracked, "sla_tracked: {}", ctx);
    prop_assert_eq!(
        a.sla_violations,
        b.sla_violations,
        "sla_violations: {}",
        ctx
    );
    prop_assert_eq!(a.wakes, b.wakes, "wakes: {}", ctx);
    prop_assert_eq!(a.parks, b.parks, "parks: {}", ctx);
    for (name, x, y) in [
        (
            "sla_violation_rate",
            a.sla_violation_rate,
            b.sla_violation_rate,
        ),
        ("utilization", a.utilization, b.utilization),
        ("cpu_utilization", a.cpu_utilization, b.cpu_utilization),
        ("mean_wait", a.mean_wait, b.mean_wait),
        ("p50_wait", a.p50_wait, b.p50_wait),
        ("p99_wait", a.p99_wait, b.p99_wait),
        ("makespan", a.makespan, b.makespan),
        ("joules", a.joules, b.joules),
    ] {
        prop_assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{} diverged ({} vs {}): {}",
            name,
            x,
            y,
            ctx
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole conformance bar: all six policies, three stream
    /// shapes, governor on and off — indexed metrics bitwise-equal to
    /// the naive rebuild-the-world reference.
    #[test]
    fn indexed_simulator_matches_reference_bitwise(
        jobs in 40usize..140,
        mult in 2.0f64..8.0,
        seed in 0u64..1_000,
        park_bit in 0usize..2,
    ) {
        let park = park_bit == 1;
        let mut cfg = ClusterConfig::default_fleet();
        cfg.park_after_s = if park { Some(90.0) } else { None };
        let rec = Recorder::noop();
        for (shape, stream) in streams(jobs, mult, seed) {
            for p in builtins() {
                let fast = icoe::cluster::simulate_cluster(&cfg, &stream, p.as_ref(), &rec);
                let naive = simulate_cluster_reference(&cfg, &stream, p.as_ref());
                let ctx = format!("{} / {} / park={}", shape, p.name(), park);
                assert_bitwise(&fast, &naive, &ctx)?;
            }
        }
    }

    /// The incremental free-capacity aggregates always match a
    /// from-scratch recount — checked in-loop by the sampled debug
    /// assertion while these (debug) runs execute, and explicitly on the
    /// final state here, including across warm reuse of the simulator.
    #[test]
    fn incremental_aggregates_match_recount(
        jobs in 40usize..160,
        mult in 2.0f64..8.0,
        seed in 0u64..1_000,
        park_bit in 0usize..2,
    ) {
        let park = park_bit == 1;
        let mut cfg = ClusterConfig::default_fleet();
        cfg.park_after_s = if park { Some(90.0) } else { None };
        let rec = Recorder::noop();
        let mut sim = ClusterSim::new(&cfg);
        prop_assert!(sim.aggregates_consistent(), "fresh state");
        for (shape, stream) in streams(jobs, mult, seed) {
            let cold = sim.run(&stream, &Fcfs, &rec);
            prop_assert!(sim.aggregates_consistent(), "after {} run", shape);
            // Warm reuse replays bitwise (shared buffers leak no state).
            let warm = sim.run(&stream, &Fcfs, &rec);
            prop_assert!(sim.aggregates_consistent(), "after warm {} run", shape);
            assert_bitwise(&cold, &warm, &format!("{} cold-vs-warm", shape))?;
        }
    }
}
