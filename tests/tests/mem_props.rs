//! Property-based invariants for the `hetsim::mem` allocation tracker:
//! capacity bounds hold under every interleaving of alloc/touch/free,
//! high-water marks are monotone, and the UnifiedSpill thrash cost grows
//! with the oversubscription ratio (ISSUE 3 satellite).

use hetsim::{machines, Loc, MemId, MemTracker, OomPolicy, GIB};
use proptest::prelude::*;

/// A random program over one GPU's tracker: op 0 = alloc, 1 = touch a
/// live region, 2 = free a live region. `bytes` is in MiB so programs
/// straddle the 16 GiB HBM capacity within a few dozen steps.
type Op = (u8, u64, usize);

fn tracker(policy: OomPolicy) -> MemTracker {
    MemTracker::for_machine(&machines::sierra_node(), policy)
}

const MIB: f64 = 1024.0 * 1024.0;
const EPS: f64 = 1e-3;

/// Drive `ops` against `t`, keeping a shadow list of live ids and the
/// total bytes ever alloc'd/freed. Returns (allocated, freed).
fn drive(t: &mut MemTracker, ops: &[Op], live: &mut Vec<MemId>) -> (f64, f64) {
    let (mut allocated, mut freed) = (0.0, 0.0);
    for &(op, mib, pick) in ops {
        let bytes = mib as f64 * MIB;
        match op {
            0 => {
                if let Ok((id, _)) = t.alloc(Loc::Gpu(0), bytes) {
                    allocated += bytes;
                    live.push(id);
                }
            }
            1 => {
                if !live.is_empty() {
                    let id = live[pick % live.len()];
                    // Touch may legitimately fail only under Fail policy
                    // semantics; under spill policies it must succeed.
                    let _ = t.touch(id);
                }
            }
            _ => {
                if !live.is_empty() {
                    let id = live.swap_remove(pick % live.len());
                    freed += t.free(id);
                }
            }
        }
    }
    (allocated, freed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under `Fail`, bytes in use never exceed capacity at any location,
    /// and free never returns more than was allocated.
    #[test]
    fn fail_policy_never_exceeds_capacity(
        ops in prop::collection::vec((0u8..3, 1u64..4096, 0usize..64), 1..60),
    ) {
        let mut t = tracker(OomPolicy::Fail);
        let mut live = Vec::new();
        let mut freed_total = 0.0;
        let mut alloc_total = 0.0;
        for &(op, mib, pick) in &ops {
            let (a, f) = drive(&mut t, &[(op, mib, pick)], &mut live);
            alloc_total += a;
            freed_total += f;
            for loc in t.locs() {
                prop_assert!(
                    t.in_use(loc) <= t.capacity(loc) + EPS,
                    "{loc:?} over capacity: {} > {}",
                    t.in_use(loc),
                    t.capacity(loc)
                );
            }
            prop_assert!(freed_total <= alloc_total + EPS, "freed more than allocated");
        }
    }

    /// `free <= alloc` and the books balance: after freeing everything,
    /// every location returns to zero bytes in use.
    #[test]
    fn books_balance_after_freeing_everything(
        policy_pick in 0u8..3,
        ops in prop::collection::vec((0u8..3, 1u64..4096, 0usize..64), 1..60),
    ) {
        let policy = match policy_pick {
            0 => OomPolicy::Fail,
            1 => OomPolicy::UnifiedSpill,
            _ => OomPolicy::NvmeSpill,
        };
        let mut t = tracker(policy);
        let mut live = Vec::new();
        let (allocated, mut freed) = drive(&mut t, &ops, &mut live);
        for id in live.drain(..) {
            freed += t.free(id);
        }
        prop_assert!((allocated - freed).abs() <= EPS, "alloc {allocated} != freed {freed}");
        prop_assert_eq!(t.live_regions(), 0);
        for loc in t.locs() {
            prop_assert!(t.in_use(loc).abs() <= EPS, "{loc:?} left {} bytes", t.in_use(loc));
        }
    }

    /// High-water marks are monotone over the life of a tracker and always
    /// dominate current use.
    #[test]
    fn high_water_is_monotone_and_dominates_use(
        policy_pick in 0u8..3,
        ops in prop::collection::vec((0u8..3, 1u64..4096, 0usize..64), 1..60),
    ) {
        let policy = match policy_pick {
            0 => OomPolicy::Fail,
            1 => OomPolicy::UnifiedSpill,
            _ => OomPolicy::NvmeSpill,
        };
        let mut t = tracker(policy);
        let mut live = Vec::new();
        let locs = t.locs();
        let mut last = vec![0.0f64; locs.len()];
        for &(op, mib, pick) in &ops {
            drive(&mut t, &[(op, mib, pick)], &mut live);
            for (i, &loc) in locs.iter().enumerate() {
                let hw = t.high_water(loc);
                prop_assert!(hw >= last[i] - EPS, "{loc:?} high-water went backwards");
                prop_assert!(hw + EPS >= t.in_use(loc), "{loc:?} high-water below in-use");
                last[i] = hw;
            }
        }
    }

    /// Under `UnifiedSpill`, eviction keeps resident GPU bytes within
    /// capacity no matter how oversubscribed the touch pattern is, and
    /// every region's resident bytes never exceed its size.
    #[test]
    fn unified_spill_keeps_resident_bytes_within_capacity(
        ops in prop::collection::vec((0u8..3, 64u64..4096, 0usize..64), 1..60),
    ) {
        let mut t = tracker(OomPolicy::UnifiedSpill);
        let mut live = Vec::new();
        for &(op, mib, pick) in &ops {
            drive(&mut t, &[(op, mib, pick)], &mut live);
            prop_assert!(
                t.in_use(Loc::Gpu(0)) <= t.capacity(Loc::Gpu(0)) + EPS,
                "eviction failed to bound residency: {} > {}",
                t.in_use(Loc::Gpu(0)),
                t.capacity(Loc::Gpu(0))
            );
            for &id in &live {
                let r = t.resident_of(id).unwrap();
                let b = t.bytes_of(id).unwrap();
                prop_assert!(r >= -EPS && r <= b + EPS, "resident {r} outside [0, {b}]");
            }
        }
    }

    /// The spill cost of one full sequential sweep is monotone in the
    /// oversubscription ratio: touching a strictly larger working set can
    /// never cost fewer migrated bytes.
    #[test]
    fn spill_traffic_is_monotone_in_oversubscription(
        extra in prop::collection::vec(1u64..16, 1..6),
    ) {
        // Working sets of 16, 16+e1, 16+e1+e2, ... GiB on a 16 GiB GPU.
        let mut sizes = vec![16u64];
        for e in extra {
            sizes.push(sizes.last().unwrap() + e);
        }
        let mut last_cost = -1.0f64;
        for n in sizes {
            let mut t = tracker(OomPolicy::UnifiedSpill);
            let ids: Vec<_> = (0..n)
                .map(|_| t.alloc(Loc::Gpu(0), GIB).unwrap().0)
                .collect();
            // Cold pass to reach steady state, then one measured sweep.
            for id in &ids {
                t.touch(*id).unwrap();
            }
            let mut moved = 0.0;
            for id in &ids {
                for m in t.touch(*id).unwrap() {
                    moved += m.bytes;
                }
            }
            prop_assert!(
                moved >= last_cost - EPS,
                "sweep of {n} GiB moved {moved} B, less than a smaller set ({last_cost} B)"
            );
            last_cost = moved;
        }
    }
}
