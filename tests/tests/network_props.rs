//! Property-based invariants for the event-driven `hetsim::Network` (v2):
//! non-blocking calls agree with their blocking forms, the hierarchical
//! allreduce never loses to the flat ring on NVLink-style fabrics at large
//! messages, congestion is monotone in the number of concurrent flows, and
//! a severity-1.0 straggler spec is bit-for-bit the uniform fabric
//! (ISSUE 4 satellite).

use hetsim::{
    AllReduceAlgo, CollectiveKind, LinkKind, LinkSpec, Network, NetworkSpec, StragglerSpec,
    TopologySpec,
};
use proptest::prelude::*;

const MIB: f64 = 1024.0 * 1024.0;

fn spec(bw_gbs: f64, latency_us: f64) -> NetworkSpec {
    NetworkSpec {
        injection_bw_gbs: bw_gbs,
        latency_us,
        gpudirect: true,
    }
}

fn intra(bw_gbs: f64, latency_us: f64) -> LinkSpec {
    LinkSpec {
        kind: LinkKind::NvLink2,
        bw_gbs,
        latency_us,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A non-blocking collective awaited immediately on a fresh (idle)
    /// network completes in exactly the blocking collective's time, for
    /// every kind and both algorithms. The event-driven path is a strict
    /// generalisation, not a different cost model.
    #[test]
    fn iwait_equals_blocking_on_an_idle_network(
        bw in 1.0f64..100.0,
        lat in 0.5f64..10.0,
        ranks in 2usize..256,
        mib in 1u64..512,
        algo_pick in 0u8..2,
    ) {
        let algo = if algo_pick == 0 {
            AllReduceAlgo::Flat
        } else {
            AllReduceAlgo::Hierarchical
        };
        let bytes = mib as f64 * MIB;
        for &kind in CollectiveKind::ALL {
            // Fresh networks per kind: icollective advances the NIC fronts.
            let blocking = Network::new(spec(bw, lat), ranks)
                .with_topology(TopologySpec {
                    ranks_per_node: 4,
                    intra_link: intra(bw * 3.0, lat),
                })
                .with_algo(algo);
            let nonblocking = blocking.clone();
            let t_block = blocking.collective(kind, bytes);
            let ev = nonblocking.icollective(kind, bytes, None);
            prop_assert_eq!(
                ev.time, t_block,
                "{kind:?}/{algo:?}: iwait {} != blocking {}", ev.time, t_block
            );
        }
    }

    /// On an NVLink-class topology (intra-node link meaningfully faster
    /// than the fabric), the hierarchical allreduce never loses to the
    /// flat ring once there are >= 2 nodes and the message is large enough
    /// for the bandwidth term to dominate the extra latency of two phases.
    #[test]
    fn hierarchical_never_loses_to_flat_at_scale(
        fabric_bw in 5.0f64..50.0,
        intra_factor in 1.5f64..4.0,
        fabric_lat in 0.5f64..5.0,
        intra_lat in 0.5f64..15.0,
        ranks_per_node in 1usize..=8,
        nodes in 2usize..=64,
        mib in 64u64..=512,
    ) {
        let ranks = nodes * ranks_per_node;
        let bytes = mib as f64 * MIB;
        let topo = TopologySpec {
            ranks_per_node,
            intra_link: intra(fabric_bw * intra_factor, intra_lat),
        };
        let net = Network::new(spec(fabric_bw, fabric_lat), ranks).with_topology(topo);
        let flat = net.collective_cost_with(
            AllReduceAlgo::Flat, CollectiveKind::AllReduce, bytes);
        let hier = net.collective_cost_with(
            AllReduceAlgo::Hierarchical, CollectiveKind::AllReduce, bytes);
        prop_assert!(
            hier <= flat,
            "hier {hier} > flat {flat} at {nodes} nodes x {ranks_per_node} ranks, {mib} MiB"
        );
    }

    /// Shared-link congestion is monotone: issuing the same probe flow
    /// with more concurrent background flows in flight can never make it
    /// finish sooner, and with zero background flows it pays exactly the
    /// closed-form p2p cost.
    #[test]
    fn congestion_is_monotone_in_concurrent_flows(
        bw in 1.0f64..100.0,
        lat in 0.5f64..10.0,
        mib in 1u64..256,
        kmax in 1usize..6,
    ) {
        let bytes = mib as f64 * MIB;
        let mut last = 0.0f64;
        for k in 0..=kmax {
            let net = Network::new(spec(bw, lat), 16);
            for bg in 0..k {
                // Long-lived background flows from distinct source NICs.
                net.ip2p(2 + bg, 15, 1024.0 * MIB, None);
            }
            let probe = net.ip2p(0, 1, bytes, None).time;
            if k == 0 {
                prop_assert_eq!(probe, net.p2p(bytes), "idle probe != closed-form p2p");
            }
            prop_assert!(
                probe >= last,
                "{k} background flows made the probe faster: {probe} < {last}"
            );
            last = probe;
        }
    }

    /// A straggler spec with severity 1.0 is the uniform fabric,
    /// bit-for-bit: every per-rank factor is exactly 1.0, so collectives
    /// and p2p flows reproduce the baseline to the last ulp regardless of
    /// seed.
    #[test]
    fn straggler_severity_one_is_bitwise_identical_to_baseline(
        bw in 1.0f64..100.0,
        lat in 0.5f64..10.0,
        ranks in 2usize..128,
        mib in 1u64..256,
        seed in 0u64..u64::MAX,
    ) {
        let bytes = mib as f64 * MIB;
        let base = Network::new(spec(bw, lat), ranks);
        let slow = Network::new(spec(bw, lat), ranks)
            .with_stragglers(StragglerSpec::new(seed, 1.0));
        for &kind in CollectiveKind::ALL {
            prop_assert_eq!(
                slow.collective(kind, bytes),
                base.collective(kind, bytes),
                "{kind:?} perturbed by a severity-1.0 straggler"
            );
        }
        prop_assert_eq!(
            slow.ip2p(0, 1, bytes, None).time,
            base.ip2p(0, 1, bytes, None).time
        );
        // Severity > 1.0 with the same seed does perturb at least one rank.
        let really_slow = Network::new(spec(bw, lat), ranks)
            .with_stragglers(StragglerSpec::new(seed, 2.0));
        prop_assert!(
            really_slow.collective(CollectiveKind::AllReduce, bytes)
                >= base.collective(CollectiveKind::AllReduce, bytes)
        );
    }
}
