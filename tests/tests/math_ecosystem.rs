//! Integration: the §4.10 library ecosystem — fem + ode + amg working on
//! one problem, the way MFEM + SUNDIALS + hypre are coupled in the paper.

use amg::{AmgOptions, BoomerAmg};
use fem::op::{assemble_diffusion, lor_mesh};
use fem::{DiffusionPA, MassPA, Mesh2d};
use linalg::Preconditioner;
use ode::{BdfIntegrator, BdfOptions, HostVec, NVector};

/// Matrix-free CG with an AMG preconditioner built on the LOR matrix —
/// MFEM operator + hypre preconditioner, exactly the §4.10.4 coupling.
#[test]
fn lor_amg_preconditions_high_order_operator() {
    let mesh = Mesh2d::unit(8, 8, 4);
    let n = mesh.ndof();
    let pa = DiffusionPA::new(mesh.clone(), |_, _| 1.0);
    let mut b = vec![0.0; n];
    let ones = mesh.project(|x, y| (x * 6.0).sin() * (y * 5.0).cos());
    MassPA::new(mesh.clone()).apply(&ones, &mut b);
    for &d in pa.boundary() {
        b[d] = 0.0;
    }

    // Preconditioned CG on the matrix-free operator.
    let run = |use_amg: bool| -> (usize, Vec<f64>) {
        let mut x = vec![0.0; n];
        let mut r = b.clone();
        let mut z = vec![0.0; n];
        let mut ap = vec![0.0; n];
        let mut local_amg = amg_for(&mesh);
        let apply_pre = |pre: &mut BoomerAmg, r: &[f64], z: &mut [f64], on: bool| {
            if on {
                pre.apply(r, z);
            } else {
                z.copy_from_slice(r);
            }
        };
        apply_pre(&mut local_amg, &r, &mut z, use_amg);
        let mut p = z.clone();
        let mut rz = linalg::dot(&r, &z);
        let bnorm = linalg::norm2(&b).max(1e-300);
        let mut iters = 0;
        for _ in 0..2000 {
            if linalg::norm2(&r) / bnorm < 1e-8 {
                break;
            }
            iters += 1;
            pa.apply(&p, &mut ap);
            let alpha = rz / linalg::dot(&p, &ap).max(1e-300);
            linalg::axpy(alpha, &p, &mut x);
            linalg::axpy(-alpha, &ap, &mut r);
            apply_pre(&mut local_amg, &r, &mut z, use_amg);
            let rz_new = linalg::dot(&r, &z);
            let beta = rz_new / rz.max(1e-300);
            rz = rz_new;
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
            }
        }
        (iters, x)
    };
    let (it_plain, x_plain) = run(false);
    let (it_amg, x_amg) = run(true);
    // Same solution either way.
    let dev = x_plain
        .iter()
        .zip(&x_amg)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(dev < 1e-6, "solutions differ by {dev}");
    // The paper's point: AMG slashes the iteration count.
    assert!(
        it_amg * 3 < it_plain,
        "AMG-CG {it_amg} iters vs plain CG {it_plain}"
    );
}

fn amg_for(mesh: &Mesh2d) -> BoomerAmg {
    let lor = lor_mesh(mesh);
    BoomerAmg::setup(assemble_diffusion(&lor, |_, _| 1.0), AmgOptions::default())
}

/// The full nonlinear transient stack conserves what it must and smooths
/// what it should — with the SUNDIALS-style integrator on top.
#[test]
fn nonlinear_diffusion_stack_is_physical() {
    let mesh = Mesh2d::unit(6, 6, 3);
    let ndof = mesh.ndof();
    let mut diff = DiffusionPA::new(mesh.clone(), |_, _| 0.1);
    let lumped = MassPA::new(mesh.clone()).lumped();
    let bdr = diff.boundary().to_vec();
    let u0 =
        mesh.project(|x, y| (-(x - 0.5) * (x - 0.5) * 30.0 - (y - 0.5) * (y - 0.5) * 30.0).exp());
    let max0 = u0.iter().copied().fold(0.0f64, f64::max);

    let mut bdf = BdfIntegrator::new(HostVec::from_vec(u0), 0.0, BdfOptions::default());
    let mut scratch = vec![0.0; ndof];
    let dc = std::cell::RefCell::new(&mut diff);
    let ok = bdf.integrate_to(
        0.01,
        1e-3,
        |_t, u, dudt| {
            let mut d = dc.borrow_mut();
            d.assemble_qdata_from_state(u, 0.1, 1.0);
            d.apply(u, &mut scratch);
            for i in 0..u.len() {
                dudt[i] = -scratch[i] / lumped[i].max(1e-12);
            }
            for &b in &bdr {
                dudt[b] = 0.0;
            }
        },
        |r: &HostVec, z: &mut HostVec| z.copy_from(r),
    );
    assert!(ok);
    let u = bdf.state().as_slice();
    let max1 = u.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min1 = u.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(
        max1 < max0,
        "diffusion must reduce the peak: {max0} -> {max1}"
    );
    assert!(min1 > -1e-6, "maximum principle violated: min {min1}");
    assert_eq!(bdf.stats.newton_failures, 0);
}
