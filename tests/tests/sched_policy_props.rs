//! Property-based tests for the `SchedPolicy` trait (PR 6): every
//! built-in policy upholds the simulator invariants, the classic policy
//! orderings hold, and the deprecated `Policy` enum adapter is *bitwise*
//! equal to the trait implementations it forwards to.

use proptest::prelude::*;
use sched::{
    simulate, EasyBackfill, Fcfs, GpuBinPack, Job, SchedPolicy, Sjf, SjfQuota, SlaUrgency,
};

fn jobs_from(durations: &[f64], gaps: &[f64], widths: &[usize], gpus: usize) -> Vec<Job> {
    let mut t = 0.0;
    durations
        .iter()
        .zip(gaps)
        .zip(widths)
        .enumerate()
        .map(|(id, ((&d, &gap), &w))| {
            t += gap;
            Job {
                id,
                arrival: t,
                duration: d,
                gpus: 1 + w % gpus,
            }
        })
        .collect()
}

fn builtins() -> Vec<Box<dyn SchedPolicy>> {
    vec![
        Box::new(Fcfs),
        Box::new(Sjf),
        Box::new(SjfQuota { quota: 4 }),
        Box::new(EasyBackfill),
        Box::new(GpuBinPack),
        Box::new(SlaUrgency),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every built-in trait policy completes every job, never exceeds
    /// unit utilization, and cannot beat the work bound.
    #[test]
    fn every_builtin_upholds_the_simulator_invariants(
        durations in prop::collection::vec(0.5f64..80.0, 1..50),
        gaps in prop::collection::vec(0.0f64..10.0, 50),
        widths in prop::collection::vec(0usize..8, 50),
    ) {
        let gpus = 4usize;
        let jobs = jobs_from(&durations, &gaps, &widths, gpus);
        let work: f64 = jobs.iter().map(|j| j.duration * j.gpus as f64).sum();
        for p in builtins() {
            let m = simulate(&jobs, gpus, p.as_ref());
            prop_assert_eq!(m.completed, jobs.len(), "{}", p.name());
            prop_assert!(m.utilization <= 1.0 + 1e-9, "{}", p.name());
            prop_assert!(
                m.makespan + 1e-9 >= work / gpus as f64,
                "{} beat the work bound", p.name()
            );
            prop_assert!(m.mean_wait <= m.max_wait + 1e-9);
        }
    }

    /// On a batch (everything arrives at once, uniform width), SJF is the
    /// mean-wait-optimal order — FCFS can never do better, and the quota
    /// variant sits between the two.
    #[test]
    fn fcfs_wait_dominates_sjf_quota_on_batches(
        durations in prop::collection::vec(1.0f64..100.0, 2..40),
    ) {
        let jobs: Vec<Job> = durations
            .iter()
            .enumerate()
            .map(|(id, &d)| Job { id, arrival: 0.0, duration: d, gpus: 1 })
            .collect();
        let fcfs = simulate(&jobs, 1, Fcfs);
        let quota = simulate(&jobs, 1, SjfQuota { quota: 1_000_000 });
        let sjf = simulate(&jobs, 1, Sjf);
        prop_assert!(
            fcfs.mean_wait + 1e-9 >= quota.mean_wait,
            "FCFS {} < SJF+Quota {}", fcfs.mean_wait, quota.mean_wait
        );
        prop_assert!(quota.mean_wait + 1e-9 >= sjf.mean_wait);
        // Same single-GPU batch: identical makespan no matter the order.
        prop_assert!((fcfs.makespan - sjf.makespan).abs() < 1e-9);
    }

    /// The deprecated `Policy` enum adapter must stay *bitwise* equal to
    /// the trait policies it forwards to — the conformance contract that
    /// keeps the 21 golden documents valid.
    #[test]
    #[allow(deprecated)]
    fn enum_adapter_is_bitwise_equal_to_trait_policies(
        durations in prop::collection::vec(0.5f64..60.0, 1..40),
        gaps in prop::collection::vec(0.0f64..8.0, 40),
        widths in prop::collection::vec(0usize..6, 40),
        quota in 1usize..10,
    ) {
        use sched::Policy;
        let gpus = 4usize;
        let jobs = jobs_from(&durations, &gaps, &widths, gpus);
        let pairs: Vec<(Policy, Box<dyn SchedPolicy>)> = vec![
            (Policy::Fcfs, Box::new(Fcfs)),
            (Policy::Sjf, Box::new(Sjf)),
            (Policy::SjfQuota { quota }, Box::new(SjfQuota { quota })),
            (Policy::EasyBackfill, Box::new(EasyBackfill)),
        ];
        for (legacy, modern) in pairs {
            let a = simulate(&jobs, gpus, legacy);
            let b = simulate(&jobs, gpus, modern.as_ref());
            // Bitwise, not approximate: the adapter forwards to the very
            // same code, so even the float noise must agree.
            prop_assert_eq!(a.makespan.to_bits(), b.makespan.to_bits(), "{}", modern.name());
            prop_assert_eq!(a.mean_wait.to_bits(), b.mean_wait.to_bits(), "{}", modern.name());
            prop_assert_eq!(a.max_wait.to_bits(), b.max_wait.to_bits(), "{}", modern.name());
            prop_assert_eq!(a.utilization.to_bits(), b.utilization.to_bits(), "{}", modern.name());
            prop_assert_eq!(a.completed, b.completed);
        }
    }

    /// With capacity for every job at once, each work-conserving policy
    /// degenerates to start-on-arrival: zero waits and metrics identical
    /// across all six built-ins.
    #[test]
    fn abundant_capacity_makes_every_policy_equal(
        durations in prop::collection::vec(1.0f64..50.0, 1..20),
        gaps in prop::collection::vec(0.0f64..5.0, 20),
        widths in prop::collection::vec(0usize..4, 20),
    ) {
        let gpus = 4 * durations.len(); // everything fits simultaneously
        let jobs = jobs_from(&durations, &gaps, &widths, 4);
        let reference = simulate(&jobs, gpus, Fcfs);
        prop_assert!(reference.mean_wait.abs() < 1e-12, "no job ever waits");
        for p in builtins() {
            let m = simulate(&jobs, gpus, p.as_ref());
            prop_assert_eq!(m.makespan.to_bits(), reference.makespan.to_bits(), "{}", p.name());
            prop_assert_eq!(m.mean_wait.to_bits(), reference.mean_wait.to_bits(), "{}", p.name());
            prop_assert_eq!(m.completed, reference.completed);
        }
    }
}
