//! Property tests for the work-stealing experiment engine (ISSUE 5
//! satellite): for any worker count in {1, 2, 4, 8}, every experiment's
//! structured JSON document is byte-identical to the serial `Registry::run`
//! baseline and comes back in paper order — plus a panic-isolation check
//! that one failing experiment never takes the rest of the batch down.

use std::sync::OnceLock;

use hetsim::obs::Recorder;
use icoe::exp::document_json;
use icoe::{FnExperiment, Registry, Report, Table};
use proptest::prelude::*;

/// The serial baseline: one document per experiment via `Registry::run`,
/// wall time zeroed (the only legitimately nondeterministic field).
/// Computed once — the registry pass is the expensive part of this suite.
fn serial_docs() -> &'static Vec<String> {
    static DOCS: OnceLock<Vec<String>> = OnceLock::new();
    DOCS.get_or_init(|| {
        bench::ALL
            .iter()
            .map(|id| {
                let mut rec = Recorder::enabled();
                let report = bench::run_with_recorder(id, &mut rec)
                    .unwrap_or_else(|| panic!("{id} not registered"));
                document_json(id, &report, &rec, 0.0)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// For every jobs value the schedule (and hence the worker/steal
    /// interleaving) differs, but the per-experiment documents must not:
    /// each one is byte-identical to the jobs=1 serial baseline, in
    /// registration (= paper) order.
    #[test]
    fn any_worker_count_matches_the_serial_documents(jobs_pick in 0usize..4) {
        let jobs = [1usize, 2, 4, 8][jobs_pick];
        let runs = bench::registry().run_all_parallel(jobs);
        prop_assert_eq!(runs.len(), bench::ALL.len());
        for ((run, &id), baseline) in runs.iter().zip(bench::ALL).zip(serial_docs()) {
            prop_assert_eq!(run.id, id, "jobs={}: emission order must be paper order", jobs);
            let out = run
                .outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("{id} failed under jobs={jobs}: {e}"));
            let doc = document_json(id, &out.report, &out.recorder, 0.0);
            prop_assert_eq!(
                &doc, baseline,
                "{}: jobs={} document differs from serial baseline", id, jobs
            );
        }
    }
}

const BOOM: &str = "par_props: deliberate test panic";

fn quiet_exp(id: &'static str) -> FnExperiment {
    FnExperiment {
        id,
        paper_artifact: "Test fixture",
        f: |rec, _params| {
            rec.incr("work", 1.0);
            let mut t = Table::new("fixture", &["k", "v"]);
            t.row_strs(&["work", "1"]);
            Report::new(vec![t])
        },
    }
}

/// One panicking experiment in the middle of a batch is reported as an
/// `Err` outcome carrying its panic message, while every other experiment
/// still completes with a full report + recorder — on both the serial
/// fallback (jobs=1) and the work-stealing pool (jobs=4).
#[test]
fn a_panicking_experiment_never_takes_the_batch_down() {
    let mut reg = Registry::new();
    reg.register(quiet_exp("ok_a"));
    reg.register(FnExperiment {
        id: "boom",
        paper_artifact: "Test fixture",
        f: |_, _| panic!("{BOOM}"),
    });
    reg.register(quiet_exp("ok_b"));

    // Silence only our own deliberate panic; anything else still prints.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|info| {
        let ours = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains(BOOM));
        if !ours {
            eprintln!("{info}");
        }
    }));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        for jobs in [1usize, 4] {
            let runs = reg.run_all_parallel(jobs);
            assert_eq!(runs.len(), 3, "jobs={jobs}");
            assert_eq!(runs[0].id, "ok_a");
            assert_eq!(runs[1].id, "boom");
            assert_eq!(runs[2].id, "ok_b");
            for run in [&runs[0], &runs[2]] {
                let out = run
                    .outcome
                    .as_ref()
                    .unwrap_or_else(|e| panic!("jobs={jobs}: {} failed: {e}", run.id));
                assert_eq!(out.report.tables.len(), 1, "jobs={jobs}");
                assert_eq!(out.recorder.counter("work"), 1.0, "jobs={jobs}");
                assert_eq!(out.recorder.span_count(), 1, "jobs={jobs}: root span only");
            }
            let err = runs[1]
                .outcome
                .as_ref()
                .err()
                .unwrap_or_else(|| panic!("jobs={jobs}: boom should fail"));
            assert!(
                err.contains(BOOM),
                "jobs={jobs}: error should carry the panic message, got {err:?}"
            );
        }
    }));
    std::panic::set_hook(prev);
    if let Err(p) = result {
        std::panic::resume_unwind(p);
    }
}
