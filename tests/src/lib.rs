//! Integration tests live in `tests/tests/*.rs`.
